"""Declarative benchmark suites with committed regression baselines.

The performance work so far produced point benchmarks --
:func:`~repro.analysis.perfbench.kernel_benchmark` for the scheduling
kernel, :func:`~repro.analysis.perfbench.cache_benchmark` for the
artifact cache, :func:`~repro.analysis.experiments.fault_campaign` for
protected failover -- each with its own ad-hoc CI gate.  This module
turns them into one **declarative harness**: a suite is a JSON file of
parameterized cases (topology size x pattern x scheduler x kernel),
each case runs to a metrics dict, and a two-layer assertion engine
(suite ``defaults.assert`` overridden per case) turns the metrics into
a ``validation`` block CI can gate on with one exit code.

Three case kinds cover the three performance surfaces:

``kernel``
    Schedule a pattern on a torus and time it.  All-to-all goes
    through :func:`repro.core.allpairs.all_to_all_schedule`, so the
    same case syntax scales from the paper's 8x8 (generic schedulers
    over routed connections) to the 64x64 structural fast path; other
    patterns route and run the requested scheduler directly.  Metrics:
    best/mean/stddev seconds over ``repeats``, throughput
    (connections/s), degree, optimality ratio vs the closed-form
    lower bound.

``cache``
    :func:`cache_benchmark` -- cold/warm/translated compile latency
    and the compile-once-run-many speedup.

``faults``
    :func:`fault_campaign` -- protected/reactive recovery: worst
    time-to-recover, losses, failover/recompile counts.

``churn``
    :func:`~repro.analysis.experiments.churn_campaign` -- delta
    scheduling under sustained add/remove updates: worst per-size mean
    amend latency, the largest-to-smallest flatness ratio (amortized
    cost must be ~O(update size), not O(pattern size)), per-epoch
    validation errors and degree-bound violations.

``farm``
    :func:`~repro.analysis.experiments.farm_campaign` -- sustained-QPS
    mixed cold/warm throughput of the sharded compile farm across farm
    sizes.  Metrics: per-size QPS, the largest-to-smallest scaling
    ratio (gated ``min_scaling``), typed failures (gated zero).  Cold
    compiles are padded to a fixed service-time floor in the worker so
    the ratio measures the farm's request-level parallelism, not the
    harness host's core count.

Assertion rules (``assert`` maps rule name to a number, or to
``{"value": x, "severity": "error" | "warning"}``):

======================  ==================  =========================
rule                    metric              passes when
======================  ==================  =========================
``max_seconds``         ``seconds``         value <= limit
``min_throughput``      ``throughput``      value >= limit
``max_degree``          ``degree``          value <= limit
``max_optimality_ratio`` ``optimality_ratio`` value <= limit
``min_speedup``         ``speedup``         value >= limit
``max_ttr_slots``       ``ttr``             value <= limit
``max_lost``            ``lost``            value <= limit
``max_amend_us``        ``amend_us``        value <= limit
``max_flatness``        ``flatness``        value <= limit
``max_validation_errors`` ``validation_errors`` value <= limit
``max_bound_violations`` ``bound_violations`` value <= limit
``min_scaling``         ``scaling``         value >= limit
``min_qps``             ``qps``             value >= limit
``max_failed``          ``failed``          value <= limit
``max_regression_pct``  kind-specific       worst drift vs baseline
                                            <= limit percent
======================  ==================  =========================

``max_regression_pct`` compares against the **committed baselines**
(``BENCH_kernel.json`` / ``BENCH_cache.json`` / ``BENCH_faults.json``
/ ``BENCH_churn.json`` / ``BENCH_farm.json``, one file per kind,
``{"schema", "header", "cases": {name: metrics}}``) using each kind's
regression metrics -- kernel: ``seconds`` down / ``throughput`` up is
good; cache: ``warm_seconds`` down / ``speedup`` up; faults: ``ttr``
down; churn: ``amend_us`` down / ``flatness`` down; farm: ``scaling``
up / ``qps`` up.  A case with no baseline entry *passes with a
warning* so new cases can land before their baseline does.

The workflow the CLI (``repro-tdm bench``) wraps:

1. ``bench run --suite s.json --report out.json`` -- run, assert,
   exit 70 on any error-severity failure;
2. ``bench compare --report out.json`` -- re-evaluate a saved report
   against the current baselines (no benchmarks re-run);
3. ``bench update-baseline --report out.json`` -- merge the report's
   metrics into the committed baseline files.

Reports and baselines carry :func:`report_header` -- schema version,
package version, git commit + dirty flag, python/numpy versions -- so
a number can always be traced to the code that produced it.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core import perf

#: Suite-file schema accepted by :func:`load_suite`.
SUITE_SCHEMA = "repro-bench/1"
#: Schema stamped on run reports.
REPORT_SCHEMA = "repro-bench-report/1"
#: Schema stamped on committed baseline files.
BASELINE_SCHEMA = "repro-bench-baseline/1"

#: Committed baseline file per case kind (relative to the baseline dir).
BASELINE_FILES = {
    "kernel": "BENCH_kernel.json",
    "cache": "BENCH_cache.json",
    "faults": "BENCH_faults.json",
    "churn": "BENCH_churn.json",
    "farm": "BENCH_farm.json",
    "ha": "BENCH_ha.json",
}

KINDS = tuple(BASELINE_FILES)
SEVERITIES = ("error", "warning")

#: rule name -> (metric key, comparator); comparator(value, limit).
RULES: dict[str, tuple[str, Callable[[float, float], bool]]] = {
    "max_seconds": ("seconds", lambda v, lim: v <= lim),
    "min_throughput": ("throughput", lambda v, lim: v >= lim),
    "max_degree": ("degree", lambda v, lim: v <= lim),
    "max_optimality_ratio": ("optimality_ratio", lambda v, lim: v <= lim),
    "min_speedup": ("speedup", lambda v, lim: v >= lim),
    "max_ttr_slots": ("ttr", lambda v, lim: v <= lim),
    "max_lost": ("lost", lambda v, lim: v <= lim),
    "max_amend_us": ("amend_us", lambda v, lim: v <= lim),
    "max_flatness": ("flatness", lambda v, lim: v <= lim),
    "max_validation_errors": ("validation_errors", lambda v, lim: v <= lim),
    "max_bound_violations": ("bound_violations", lambda v, lim: v <= lim),
    "min_scaling": ("scaling", lambda v, lim: v >= lim),
    "min_qps": ("qps", lambda v, lim: v >= lim),
    "max_failed": ("failed", lambda v, lim: v <= lim),
    "min_availability": ("availability", lambda v, lim: v >= lim),
    "max_restore_sweeps": ("restore_sweeps", lambda v, lim: v <= lim),
    "max_promote_seconds": ("promote_seconds", lambda v, lim: v <= lim),
    "max_corrupt": ("corrupt", lambda v, lim: v <= lim),
    "max_gates_failed": ("gates_failed", lambda v, lim: v <= lim),
}

#: Per kind: the metrics the regression gate watches, and whether
#: lower is better for each.
REGRESSION_METRICS: dict[str, tuple[tuple[str, bool], ...]] = {
    "kernel": (("seconds", True), ("throughput", False)),
    "cache": (("warm_seconds", True), ("speedup", False)),
    "faults": (("ttr", True),),
    "churn": (("amend_us", True), ("flatness", True)),
    "farm": (("scaling", False), ("qps", False)),
    # restore_sweeps is a small integer, useless as a percentage gate;
    # availability is the one continuously-valued HA metric.
    "ha": (("availability", False),),
}


class SuiteError(ValueError):
    """A malformed suite document (bad schema, case, or assertion)."""


# ----------------------------------------------------------------------
# report header
# ----------------------------------------------------------------------

def _git_metadata() -> dict[str, object]:
    """Best-effort commit + dirty flag of the working tree."""
    def run(*argv: str) -> str | None:
        try:
            out = subprocess.run(
                ["git", *argv], capture_output=True, text=True, timeout=10,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return out.stdout.strip() if out.returncode == 0 else None

    commit = run("rev-parse", "HEAD")
    status = run("status", "--porcelain")
    return {
        "commit": commit,
        "dirty": bool(status) if status is not None else None,
    }


def report_header() -> dict[str, object]:
    """Provenance block stamped on every report and baseline."""
    import repro

    return {
        "generator": "repro-tdm bench",
        "version": repro.__version__,
        "git": _git_metadata(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
    }


# ----------------------------------------------------------------------
# suite loading / validation
# ----------------------------------------------------------------------

def _check_assert_block(block: Any, where: str) -> None:
    if not isinstance(block, dict):
        raise SuiteError(f"{where}: 'assert' must be an object, got {block!r}")
    for rule, spec in block.items():
        if rule != "max_regression_pct" and rule not in RULES:
            known = (*RULES, "max_regression_pct")
            raise SuiteError(f"{where}: unknown rule {rule!r}; known: {known}")
        if isinstance(spec, dict):
            extra = set(spec) - {"value", "severity"}
            if extra:
                raise SuiteError(f"{where}.{rule}: unknown keys {sorted(extra)}")
            if "value" not in spec:
                raise SuiteError(f"{where}.{rule}: missing 'value'")
            value = spec["value"]
            severity = spec.get("severity", "error")
            if severity not in SEVERITIES:
                raise SuiteError(
                    f"{where}.{rule}: severity must be one of {SEVERITIES}, "
                    f"got {severity!r}"
                )
        else:
            value = spec
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SuiteError(f"{where}.{rule}: limit must be a number, got {value!r}")


def validate_suite(doc: Any) -> dict:
    """Validate a suite document; return it.  Raises :class:`SuiteError`."""
    if not isinstance(doc, dict):
        raise SuiteError(f"suite must be a JSON object, got {type(doc).__name__}")
    if doc.get("schema") != SUITE_SCHEMA:
        raise SuiteError(
            f"suite schema must be {SUITE_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if not isinstance(doc.get("name"), str) or not doc["name"]:
        raise SuiteError("suite needs a non-empty string 'name'")
    defaults = doc.get("defaults", {})
    if not isinstance(defaults, dict):
        raise SuiteError("'defaults' must be an object")
    if "assert" in defaults:
        _check_assert_block(defaults["assert"], "defaults")
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        raise SuiteError("'cases' must be a non-empty list")
    seen: set[str] = set()
    for i, case in enumerate(cases):
        where = f"cases[{i}]"
        if not isinstance(case, dict):
            raise SuiteError(f"{where}: must be an object")
        name = case.get("name")
        if not isinstance(name, str) or not name:
            raise SuiteError(f"{where}: needs a non-empty string 'name'")
        if name in seen:
            raise SuiteError(f"{where}: duplicate case name {name!r}")
        seen.add(name)
        kind = case.get("kind", "kernel")
        if kind not in KINDS:
            raise SuiteError(
                f"{where} ({name}): kind must be one of {KINDS}, got {kind!r}"
            )
        if "assert" in case:
            _check_assert_block(case["assert"], f"{where} ({name})")
    return doc


def load_suite(path: str) -> dict:
    """Load and validate a suite JSON file."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise SuiteError(f"cannot read suite {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SuiteError(f"suite {path!r} is not valid JSON: {exc}") from None
    return validate_suite(doc)


def merge_assertions(defaults: dict, case: dict) -> dict[str, dict]:
    """Suite-default rules overridden per case, normalized to
    ``{rule: {"value": x, "severity": s}}``."""
    merged: dict[str, Any] = {}
    merged.update(defaults.get("assert", {}))
    merged.update(case.get("assert", {}))
    out: dict[str, dict] = {}
    for rule, spec in merged.items():
        if isinstance(spec, dict):
            out[rule] = {
                "value": spec["value"],
                "severity": spec.get("severity", "error"),
            }
        else:
            out[rule] = {"value": spec, "severity": "error"}
    return out


# ----------------------------------------------------------------------
# assertion engine
# ----------------------------------------------------------------------

@dataclass
class AssertionResult:
    """One evaluated rule of one case."""

    rule: str
    metric: str
    value: float | None
    limit: float
    severity: str
    passed: bool
    skipped: bool = False
    detail: str = ""

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "value": self.value,
            "limit": self.limit,
            "severity": self.severity,
            "passed": self.passed,
            "skipped": self.skipped,
            "detail": self.detail,
        }


def _regression(
    kind: str, metrics: dict, baseline: dict | None, spec: dict
) -> AssertionResult:
    limit, severity = spec["value"], spec["severity"]
    if baseline is None:
        return AssertionResult(
            "max_regression_pct", "-", None, limit, "warning", True,
            skipped=True, detail="no baseline entry for this case",
        )
    worst = None
    worst_metric = "-"
    details = []
    for metric, lower_is_better in REGRESSION_METRICS[kind]:
        cur, base = metrics.get(metric), baseline.get(metric)
        if cur is None or base is None or not base:
            continue
        # Drift in the *bad* direction, as a percentage of the baseline.
        pct = 100.0 * ((cur - base) if lower_is_better else (base - cur)) / base
        details.append(f"{metric}: {base:.6g} -> {cur:.6g} ({pct:+.1f}%)")
        if worst is None or pct > worst:
            worst, worst_metric = pct, metric
    if worst is None:
        return AssertionResult(
            "max_regression_pct", "-", None, limit, "warning", True,
            skipped=True, detail="baseline shares no regression metrics",
        )
    return AssertionResult(
        "max_regression_pct", worst_metric, round(worst, 3), limit, severity,
        passed=worst <= limit, detail="; ".join(details),
    )


def evaluate_case(
    kind: str,
    metrics: dict,
    rules: dict[str, dict],
    baseline: dict | None,
) -> dict[str, object]:
    """The ``validation`` block: every rule evaluated against metrics."""
    results: list[AssertionResult] = []
    for rule, spec in sorted(rules.items()):
        if rule == "max_regression_pct":
            results.append(_regression(kind, metrics, baseline, spec))
            continue
        metric, cmp = RULES[rule]
        value = metrics.get(metric)
        if value is None:
            results.append(AssertionResult(
                rule, metric, None, spec["value"], spec["severity"],
                passed=False,
                detail=f"case produced no {metric!r} metric",
            ))
            continue
        results.append(AssertionResult(
            rule, metric, value, spec["value"], spec["severity"],
            passed=cmp(value, spec["value"]),
        ))
    errors = sum(1 for r in results if not r.passed and r.severity == "error")
    warnings = sum(
        1 for r in results
        if (not r.passed and r.severity == "warning") or r.skipped
    )
    return {
        "assertions": [r.as_dict() for r in results],
        "passed": errors == 0,
        "errors": errors,
        "warnings": warnings,
    }


# ----------------------------------------------------------------------
# case runners
# ----------------------------------------------------------------------

def _topology(params: dict):
    """Case topology: ``"torus": k`` or ``"torus": [w, h]``."""
    from repro.topology.torus import Torus2D

    spec = params.get("torus", 8)
    if isinstance(spec, list):
        return Torus2D(*spec)
    return Torus2D(int(spec))


def _timing_stats(times: list[float]) -> dict[str, float]:
    best = min(times)
    mean = sum(times) / len(times)
    var = sum((t - mean) ** 2 for t in times) / len(times)
    return {
        "seconds": best,
        "mean_seconds": mean,
        "stddev_seconds": math.sqrt(var),
        "repeats": len(times),
    }


def _pattern_requests(topo, pattern: str, size: int):
    from repro.patterns.classic import (
        hypercube_pattern,
        nearest_neighbour_2d,
        ring_pattern,
        shuffle_exchange_pattern,
    )

    n = topo.num_nodes
    factories = {
        "ring": lambda: ring_pattern(n, size=size),
        "nearest neighbour": lambda: nearest_neighbour_2d(
            topo.width, topo.height, size=size
        ),
        "hypercube": lambda: hypercube_pattern(n, size=size),
        "shuffle-exchange": lambda: shuffle_exchange_pattern(n, size=size),
    }
    try:
        return factories[pattern]()
    except KeyError:
        raise SuiteError(
            f"unknown kernel-case pattern {pattern!r}; "
            f"choose from {('all-to-all', *factories)}"
        ) from None


def run_kernel_case(params: dict) -> dict[str, object]:
    """Time one (topology, pattern, scheduler, kernel) combination."""
    from repro.core.allpairs import all_to_all_lower_bound, all_to_all_schedule
    from repro.core.aapc_ordered import ordered_aapc_schedule
    from repro.core.coloring import coloring_schedule
    from repro.core.combined import combined_schedule
    from repro.core.greedy import greedy_schedule
    from repro.core.linkmask import resolve_kernel
    from repro.core.paths import route_requests

    topo = _topology(params)
    pattern = params.get("pattern", "all-to-all")
    scheduler = params.get("scheduler", "combined")
    kernel = resolve_kernel(params.get("kernel"))
    repeats = max(1, int(params.get("repeats", 3)))

    if pattern == "all-to-all":
        num_connections = topo.num_nodes * (topo.num_nodes - 1)
        lower_bound = all_to_all_lower_bound(topo)
        times, schedule = [], None
        for _ in range(repeats):
            t0 = perf.perf_timer()
            schedule = all_to_all_schedule(
                topo, scheduler=scheduler, kernel=kernel
            )
            times.append(perf.perf_timer() - t0)
        tag = schedule.scheduler
        degree = schedule.degree
    else:
        requests = _pattern_requests(topo, pattern, int(params.get("size", 1)))
        connections = route_requests(topo, requests)
        num_connections = len(connections)
        lower_bound = None
        runs = {
            "greedy": lambda: greedy_schedule(connections, kernel=kernel),
            "coloring": lambda: coloring_schedule(connections, kernel=kernel),
            "aapc": lambda: ordered_aapc_schedule(
                connections, topo, kernel=kernel
            ),
            "combined": lambda: combined_schedule(
                connections, topo, kernel=kernel
            ),
        }
        if scheduler not in runs:
            raise SuiteError(
                f"kernel case scheduler must be one of {tuple(runs)} for "
                f"pattern {pattern!r}, got {scheduler!r}"
            )
        times, schedule = [], None
        for _ in range(repeats):
            t0 = perf.perf_timer()
            schedule = runs[scheduler]()
            times.append(perf.perf_timer() - t0)
        tag = schedule.scheduler
        degree = schedule.degree

    metrics: dict[str, object] = {
        "topology": topo.signature,
        "pattern": pattern,
        "scheduler": tag,
        "kernel": kernel,
        "connections": num_connections,
        "degree": int(degree),
        **_timing_stats(times),
    }
    best = metrics["seconds"]
    metrics["throughput"] = num_connections / best if best > 0 else 0.0
    if lower_bound:
        metrics["lower_bound"] = lower_bound
        metrics["optimality_ratio"] = round(degree / lower_bound, 4)
    return metrics


def run_cache_case(params: dict) -> dict[str, object]:
    """Cold/warm artifact-cache compile latency and speedup."""
    from repro.analysis.perfbench import cache_benchmark

    t0 = perf.perf_timer()
    report = cache_benchmark(
        repeats=max(1, int(params.get("repeats", 3))),
        topology=_topology(params),
        scheduler=params.get("scheduler", "combined"),
    )
    elapsed = perf.perf_timer() - t0
    return {
        "topology": report["topology"],
        "scheduler": report["scheduler"],
        "connections": report["connections"],
        "repeats": report["repeats"],
        "cold_seconds": report["cold_seconds"],
        "warm_seconds": report["warm_seconds"],
        "translated_seconds": report["translated_seconds"],
        "speedup": report["speedup"],
        # the latency the warm-path gate cares about
        "seconds": report["warm_seconds"],
        "campaign_seconds": elapsed,
    }


def run_faults_case(params: dict) -> dict[str, object]:
    """Fault-recovery campaign: worst TTR, losses, failover counts."""
    from repro.analysis.experiments import fault_campaign
    from repro.simulator.params import SimParams

    sim = SimParams(seed=int(params.get("seed", 0))).with_(
        recompile_latency=int(params.get("recompile_latency", 3)),
        failover_latency=int(params.get("failover_latency", 1)),
    )
    t0 = perf.perf_timer()
    rows = fault_campaign(
        pattern=params.get("pattern", "all-to-all"),
        size=int(params.get("size", 4)),
        degree=int(params.get("degree", 2)),
        fault_counts=tuple(params.get("faults", [0, 1])),
        repair_after=params.get("repair_after"),
        protocol=params.get("protocol", "dropping"),
        params=sim,
        seed=int(params.get("seed", 0)),
        topology=_topology(params) if "torus" in params else None,
        recovery=params.get("recovery", "protected"),
    )
    elapsed = perf.perf_timer() - t0
    return {
        "pattern": params.get("pattern", "all-to-all"),
        "recovery": params.get("recovery", "protected"),
        "fault_counts": [r["faults"] for r in rows],
        "ttr": max(r["compiled_ttr"] for r in rows),
        "lost": int(sum(r["compiled_lost"] for r in rows)),
        "failovers": int(sum(r["compiled_failovers"] for r in rows)),
        "uncovered": int(sum(r["compiled_uncovered"] for r in rows)),
        "reschedules": int(sum(r["compiled_reschedules"] for r in rows)),
        "worst_slowdown_pct": max(r["compiled_slowdown_pct"] for r in rows),
        "seconds": elapsed,
    }


def run_churn_case(params: dict) -> dict[str, object]:
    """Delta-scheduling churn: amortized amend cost and its flatness.

    ``amend_us`` is the worst per-size mean amend latency (the
    committed cost-per-update bound); ``flatness`` the largest-to-
    smallest median-latency ratio across the size sweep, which a
    full-recompile implementation would blow up linearly with the
    pattern.  ``validation_errors``/``bound_violations`` count epochs
    that failed ``validate()`` or exceeded the recompile-slack degree
    bound -- both gate at zero.
    """
    from repro.analysis.experiments import churn_campaign

    t0 = perf.perf_timer()
    out = churn_campaign(
        sizes=tuple(params.get("sizes", [8, 16, 32])),
        pattern=params.get("pattern", "ring"),
        steps=max(1, int(params.get("steps", 40))),
        update_size=max(1, int(params.get("update_size", 2))),
        size=int(params.get("size", 4)),
        scheduler=params.get("scheduler", "greedy"),
        seed=int(params.get("seed", 0)),
    )
    elapsed = perf.perf_timer() - t0
    rows, summary = out["rows"], out["summary"]
    return {
        "pattern": out["pattern"],
        "sizes": [r["size"] for r in rows],
        "steps": rows[0]["steps"],
        "update_size": out["update_size"],
        "updates": summary["updates"],
        "amend_us": max(r["amend_mean_us"] for r in rows),
        "amend_median_us": max(r["amend_median_us"] for r in rows),
        "flatness": round(summary["flatness"], 3),
        "flatness_mean": round(summary["flatness_mean"], 3),
        "pattern_growth": summary["pattern_growth"],
        "validation_errors": int(summary["validation_errors"]),
        "bound_violations": int(sum(not r["bound_ok"] for r in rows)),
        "actions": {
            r["size"]: r["actions"] for r in rows
        },
        "seconds": elapsed,
    }


def run_farm_case(params: dict) -> dict[str, object]:
    """Compile-farm throughput scaling: sustained mixed cold/warm QPS.

    ``scaling`` is qps(largest farm) / qps(smallest) over the same
    seeded workload (gated ``min_scaling``: the tentpole claim is
    near-linear 1 -> 4 worker scaling); ``qps`` the largest farm's
    throughput; ``failed`` the typed-error count across every size
    (gates at zero -- shedding or timeouts mean the sizing is wrong
    for the harness).
    """
    from repro.analysis.experiments import farm_campaign

    t0 = perf.perf_timer()
    out = farm_campaign(
        farms=tuple(params.get("farms", [1, 2, 4])),
        requests=max(1, int(params.get("requests", 128))),
        concurrency=max(1, int(params.get("concurrency", 12))),
        replication=int(params.get("replication", 2)),
        torus=int(params.get("torus", 8)),
        pairs=int(params.get("pairs", 48)),
        cold_frac=float(params.get("cold_frac", 0.5)),
        warm_patterns=int(params.get("warm_patterns", 6)),
        workers=int(params.get("workers", 1)),
        scheduler=params.get("scheduler", "combined"),
        registers=bool(params.get("registers", False)),
        service_floor=float(params.get("service_floor", 0.15)),
        seed=int(params.get("seed", 0)),
    )
    elapsed = perf.perf_timer() - t0
    rows, summary = out["rows"], out["summary"]
    return {
        "farms": [r["nodes"] for r in rows],
        "workers": summary["workers"],
        "requests": rows[0]["requests"],
        "service_floor": out["service_floor"],
        "scaling": round(summary["scaling"], 3),
        "qps": round(rows[-1]["qps"], 2),
        "qps_per_size": [round(q, 2) for q in summary["qps"]],
        "completed": summary["completed"],
        "failed": int(summary["failed"]),
        "direct": int(sum(r["direct"] for r in rows)),
        "via_router": int(sum(r["via_router"] for r in rows)),
        "replicas_pushed": int(sum(r["replicas_pushed"] for r in rows)),
        "seconds": elapsed,
    }


def run_ha_case(params: dict) -> dict[str, object]:
    """Farm self-healing under a scripted kill/rejoin schedule.

    Runs the seven-phase HA chaos campaign (replica-push loss, one-way
    partition, kill-primary-mid-amend-stream, rejoin, router restart,
    leader-router kill against an HA pair, graceful drain under load)
    and reports ``availability`` (fraction of scored requests answered
    correctly -- a typed refusal of a stale amend counts as correct
    service), ``restore_sweeps`` (worst-case anti-entropy sweeps to
    return every tracked digest to replication factor R), ``corrupt``
    (gates at zero: a wrong-bytes reply is never acceptable),
    ``promote_seconds`` (measured standby-promotion time after the
    leader kill) and ``gates_failed`` (the campaign's own pass/fail
    conjuncts).
    """
    from repro.service.chaos import run_farm_ha_campaign

    t0 = perf.perf_timer()
    report = run_farm_ha_campaign(
        max(1, int(params.get("requests", 48))),
        nodes=int(params.get("nodes", 3)),
        replication=int(params.get("replication", 2)),
        seed=int(params.get("seed", 0)),
        cache_dir=None,
        drop_rate=float(params.get("drop_rate", 0.5)),
        max_restore_sweeps=int(params.get("max_sweeps", 3)),
        amend_steps=int(params.get("amend_steps", 6)),
    )
    elapsed = perf.perf_timer() - t0
    return {
        "attempted": report["attempted"],
        "completed": report["completed"],
        "availability": round(report["availability"], 4),
        "restore_sweeps": int(report["restore_sweeps"]),
        "corrupt": len(report["corrupted"]),
        "untyped": len(report["untyped_failures"]),
        "gates_failed": sum(
            1 for ok in report["gates"].values() if not ok
        ),
        "repaired": report["replication_stats"]["repaired"],
        "amend_takeovers": report["replication_stats"]["amend_takeovers"],
        "rejoins": report["router"]["rejoins"],
        "promote_seconds": report["promote_seconds"],
        "drain_handoffs": report["replication_stats"]["drain_handoffs"],
        "drain_adoptions": report["replication_stats"]["drain_adoptions"],
        "drain_repush_retries": (
            report["replication_stats"]["drain_repush_retries"]
        ),
        "seconds": elapsed,
    }


_RUNNERS = {
    "kernel": run_kernel_case,
    "cache": run_cache_case,
    "faults": run_faults_case,
    "churn": run_churn_case,
    "farm": run_farm_case,
    "ha": run_ha_case,
}


# ----------------------------------------------------------------------
# suite execution and reports
# ----------------------------------------------------------------------

def _merged_params(defaults: dict, case: dict) -> dict:
    params = {
        k: v for k, v in defaults.items() if k not in ("assert",)
    }
    params.update({k: v for k, v in case.items() if k not in ("assert",)})
    return params


def run_suite(
    suite: dict,
    *,
    baselines: dict[str, dict] | None = None,
    only: list[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, object]:
    """Run every case of a validated suite and assert on the results.

    ``baselines`` maps kind to ``{case_name: metrics}`` (see
    :func:`load_baselines`); ``only`` restricts to the named cases.
    Returns the full report document, with the merged assertion rules
    embedded per case so :func:`reevaluate` can re-gate it later
    without the suite file.
    """
    baselines = baselines or {}
    defaults = suite.get("defaults", {})
    selected = [
        c for c in suite["cases"] if only is None or c["name"] in only
    ]
    if only is not None:
        missing = set(only) - {c["name"] for c in selected}
        if missing:
            raise SuiteError(f"unknown case names: {sorted(missing)}")
    case_docs = []
    for case in selected:
        name = case["name"]
        kind = case.get("kind", "kernel")
        params = _merged_params(defaults, case)
        rules = merge_assertions(defaults, case)
        if progress:
            progress(f"[{kind}] {name} ...")
        metrics = _RUNNERS[kind](params)
        validation = evaluate_case(
            kind, metrics, rules, baselines.get(kind, {}).get(name)
        )
        if progress:
            status = "ok" if validation["passed"] else "FAIL"
            progress(
                f"[{kind}] {name}: {metrics.get('seconds', 0):.3f}s "
                f"({validation['errors']} errors, "
                f"{validation['warnings']} warnings) {status}"
            )
        case_docs.append({
            "name": name,
            "kind": kind,
            "params": {
                k: v for k, v in params.items() if k not in ("name", "kind")
            },
            "assert": rules,
            "metrics": metrics,
            "validation": validation,
        })
    failed = [c for c in case_docs if not c["validation"]["passed"]]
    return {
        "schema": REPORT_SCHEMA,
        "header": report_header(),
        "suite": suite["name"],
        "cases": case_docs,
        "summary": {
            "cases": len(case_docs),
            "passed": len(case_docs) - len(failed),
            "failed": len(failed),
            "errors": sum(c["validation"]["errors"] for c in case_docs),
            "warnings": sum(c["validation"]["warnings"] for c in case_docs),
            "gate_ok": not failed,
        },
    }


def reevaluate(
    report: dict, baselines: dict[str, dict] | None = None
) -> dict[str, object]:
    """Re-run the assertions of a saved report against fresh baselines.

    The benchmarks themselves are *not* re-run -- this is the
    ``bench compare`` path: same metrics, current baseline files.
    """
    if report.get("schema") != REPORT_SCHEMA:
        raise SuiteError(
            f"report schema must be {REPORT_SCHEMA!r}, "
            f"got {report.get('schema')!r}"
        )
    baselines = baselines or {}
    case_docs = []
    for case in report["cases"]:
        kind = case["kind"]
        validation = evaluate_case(
            kind, case["metrics"], case.get("assert", {}),
            baselines.get(kind, {}).get(case["name"]),
        )
        case_docs.append({**case, "validation": validation})
    failed = [c for c in case_docs if not c["validation"]["passed"]]
    return {
        **report,
        "cases": case_docs,
        "summary": {
            "cases": len(case_docs),
            "passed": len(case_docs) - len(failed),
            "failed": len(failed),
            "errors": sum(c["validation"]["errors"] for c in case_docs),
            "warnings": sum(c["validation"]["warnings"] for c in case_docs),
            "gate_ok": not failed,
        },
    }


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------

def load_baselines(directory: str = ".") -> dict[str, dict]:
    """Load the committed per-kind baseline files that exist.

    Returns ``{kind: {case_name: metrics}}``; kinds with no file (or
    an unreadable one) are simply absent, which downgrades their
    regression gates to warnings.
    """
    out: dict[str, dict] = {}
    for kind, filename in BASELINE_FILES.items():
        path = os.path.join(directory, filename)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        cases = doc.get("cases")
        if isinstance(cases, dict):
            out[kind] = cases
    return out


def update_baselines(report: dict, directory: str = ".") -> list[str]:
    """Merge a report's metrics into the committed baseline files.

    Existing entries for other cases are preserved; the touched files
    get a fresh header.  Returns the paths written.
    """
    if report.get("schema") != REPORT_SCHEMA:
        raise SuiteError(
            f"report schema must be {REPORT_SCHEMA!r}, "
            f"got {report.get('schema')!r}"
        )
    by_kind: dict[str, dict] = {}
    for case in report["cases"]:
        by_kind.setdefault(case["kind"], {})[case["name"]] = case["metrics"]
    written = []
    for kind, cases in sorted(by_kind.items()):
        path = os.path.join(directory, BASELINE_FILES[kind])
        existing: dict = {}
        try:
            with open(path) as fh:
                doc = json.load(fh)
            if isinstance(doc.get("cases"), dict):
                existing = doc["cases"]
        except (OSError, json.JSONDecodeError):
            pass
        existing.update(cases)
        with open(path, "w") as fh:
            json.dump(
                {
                    "schema": BASELINE_SCHEMA,
                    "header": report_header(),
                    "suite": report.get("suite"),
                    "cases": existing,
                },
                fh, indent=1, sort_keys=True,
            )
            fh.write("\n")
        written.append(path)
    return written
