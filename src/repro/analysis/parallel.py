"""Process-parallel sweep driver for the experiment tables.

The table drivers are embarrassingly parallel -- hundreds of independent
(pattern, schedule) evaluations -- so :func:`map_tasks` fans them out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Three rules
keep parallel runs trustworthy:

**Determinism.**  Results must be byte-identical to a serial run, so the
drivers derive one independent RNG per task with ``Generator.spawn``
(rather than threading a single stream through the loop) and tasks are
returned in submission order.  ``workers=N`` changes wall-clock time
only, never a number.

**Counter aggregation.**  The perf counters (:mod:`repro.core.perf`)
are process-global, so each worker task runs with freshly reset
counters and ships its snapshot back with the result; the parent merges
every snapshot into its own counters.  A parallel sweep therefore
reports the same totals a serial one would.

**Cache warming.**  The ordered-AAPC scheduler depends on a per-topology
phase decomposition that takes ~1 s to build.  On fork-based platforms
the parent warms the cache *before* the pool exists so every worker
inherits it copy-on-write; on spawn-based platforms each worker builds
its own copy on first use (correct, merely slower).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.core import perf

__all__ = ["default_workers", "map_tasks", "warm_aapc_cache"]


def default_workers() -> int:
    """Worker count used for ``workers="auto"``: one per CPU."""
    return os.cpu_count() or 1


def resolve_workers(workers: int | str | None) -> int | None:
    """Normalise a ``workers`` argument (``None``/int/``"auto"``)."""
    if workers == "auto":
        return default_workers()
    if workers is None:
        return None
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def warm_aapc_cache(topology) -> None:
    """Build the topology's AAPC decomposition in this process.

    Called before the worker pool is created so fork-based workers
    share the (expensive, immutable-after-build) cache copy-on-write.
    """
    from repro.aapc.phases import aapc_decomposition

    aapc_decomposition(topology)


def _run_isolated(fn_task: tuple[Callable[[Any], Any], Any]) -> tuple[Any, dict]:
    """Worker-side wrapper: run one task under fresh perf counters."""
    fn, task = fn_task
    perf.reset()
    result = fn(task)
    return result, perf.snapshot()


def map_tasks(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    *,
    workers: int | str | None = None,
) -> list[Any]:
    """``[fn(t) for t in tasks]``, optionally fanned out over processes.

    Parameters
    ----------
    fn:
        Top-level (picklable) callable applied to each task.
    tasks:
        Task values; each must be picklable when ``workers > 1``.
    workers:
        ``None`` or ``1`` runs serially in this process; an int runs a
        :class:`ProcessPoolExecutor` with that many workers; ``"auto"``
        uses one worker per CPU.

    Results come back in task order regardless of completion order, and
    worker perf-counter snapshots are merged into this process's global
    counters, so neither results nor counters depend on ``workers``.
    """
    tasks = list(tasks)
    workers = resolve_workers(workers)
    if workers is None or workers <= 1 or len(tasks) <= 1:
        return [fn(t) for t in tasks]
    results: list[Any] = []
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        for result, counters in pool.map(_run_isolated, [(fn, t) for t in tasks]):
            perf.COUNTERS.merge(counters)
            results.append(result)
    return results
