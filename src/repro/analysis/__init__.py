"""Experiment drivers and reporting.

:mod:`repro.analysis.experiments` contains one driver per paper table/
figure, returning plain data structures; :mod:`repro.analysis.tables`
renders them as aligned text tables.  The pytest benches, the CLI and
EXPERIMENTS.md are all generated from these drivers, so the numbers in
the documentation are exactly what the code produces.
"""

from repro.analysis.tables import format_table
from repro.analysis.stats import mean_ci, mean_std, relative_error, within
from repro.analysis.viz import (
    render_configuration,
    render_link_heatmap,
    render_schedule_utilisation,
)
from repro.analysis import experiments

__all__ = [
    "format_table",
    "mean_ci",
    "mean_std",
    "relative_error",
    "within",
    "experiments",
    "render_configuration",
    "render_link_heatmap",
    "render_schedule_utilisation",
]
