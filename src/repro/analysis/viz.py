"""ASCII visualisation of torus configurations and schedules.

Terminal-friendly renderings used by the examples and handy when
debugging schedules: a node-grid view of one configuration's circuits
and a per-link utilisation summary of a whole TDM frame.
"""

from __future__ import annotations

from collections import Counter

from repro.core.configuration import Configuration, ConfigurationSet
from repro.topology.links import LinkKind
from repro.topology.torus import Torus2D


def render_configuration(topology: Torus2D, configuration: Configuration) -> str:
    """Draw one configuration on the torus grid.

    Nodes appear as a ``width x height`` grid of ids; each circuit is
    listed beneath with its hop-by-hop path (``s >1+x 2+y> d`` style),
    and per-direction fiber usage is summarised.
    """
    width, height = topology.width, topology.height
    lines = [f"torus {width}x{height}, configuration with "
             f"{len(configuration)} circuits:"]
    cell = max(3, len(str(topology.num_nodes - 1)) + 1)
    for y in range(height):
        row = "".join(
            str(topology.node(x, y)).rjust(cell) for x in range(width)
        )
        lines.append("  " + row)
    lines.append("")
    direction_use: Counter[str] = Counter()
    for conn in configuration:
        hops = []
        for link in conn.links:
            info = topology.link_info(link)
            if info.kind is LinkKind.TRANSIT:
                hops.append(info.direction or "?")
                direction_use[info.direction or "?"] += 1
        path = " ".join(hops) if hops else "(adjacent PEs)"
        lines.append(f"  {conn.request.src:>3} -> {conn.request.dst:<3} via {path}")
    if direction_use:
        used = ", ".join(
            f"{d}:{n}" for d, n in sorted(direction_use.items())
        )
        lines.append(f"  fiber hops by direction: {used}")
    return "\n".join(lines)


def render_schedule_utilisation(
    topology: Torus2D, schedule: ConfigurationSet
) -> str:
    """Per-slot link-utilisation bar chart of a TDM frame."""
    total_links = topology.num_links
    lines = [
        f"TDM frame, K = {schedule.degree} slots "
        f"({len(schedule.all_connections())} circuits total):"
    ]
    for slot, cfg in enumerate(schedule):
        frac = cfg.total_links_used / total_links
        bar = "#" * round(frac * 40)
        lines.append(
            f"  slot {slot:>3}: {len(cfg):>4} circuits, "
            f"{cfg.total_links_used:>4}/{total_links} links {bar}"
        )
    lines.append(f"  frame utilisation: {schedule.utilisation(total_links):.1%}")
    return "\n".join(lines)


def render_link_heatmap(topology: Torus2D, schedule: ConfigurationSet) -> str:
    """Horizontal-fiber load map: how many slots each +x fiber is lit.

    One row per torus row; the digit (or ``*`` for >=10) under each
    column is the number of frame slots using the +x fiber leaving that
    node -- a quick visual check of how evenly a schedule loads the
    network.
    """
    load: Counter[int] = Counter()
    for cfg in schedule:
        for conn in cfg:
            for link in conn.links:
                load[link] += 1
    lines = ["+x fiber load (slots lit per fiber):"]
    for y in range(topology.height):
        cells = []
        for x in range(topology.width):
            n = load[topology.transit_link(topology.node(x, y), 0, True)]
            cells.append("*" if n >= 10 else str(n))
        lines.append("  " + " ".join(cells))
    return "\n".join(lines)
