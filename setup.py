"""Legacy setup shim (the offline environment lacks the `wheel` package
needed for PEP 660 editable installs)."""

from setuptools import setup

setup()
