"""Scenario: collective operations with optical multicast.

The paper's machine model is unicast, but its switches plus optical
splitters support multicast trees: one slot can carry a whole
broadcast.  This example compiles three collective operations both
ways -- as multicast trees and as the unicast message sets a
splitter-less network would need -- and shows the register words that
implement the fanout.

Run:  python examples/collectives.py
"""

from repro import SimParams, Torus2D, compiled_completion_time, route_requests
from repro.analysis import format_table
from repro.core import RequestSet, coloring_schedule, greedy_schedule
from repro.multicast import (
    all_broadcast_pattern,
    broadcast_pattern,
    compiled_multicast_completion_time,
    generate_multicast_registers,
    route_multicasts,
    row_multicast_pattern,
)
from repro.patterns import all_to_all_pattern


def main() -> None:
    topo = Torus2D(8)
    params = SimParams()
    size = 64  # elements per message

    rows = []

    # broadcast: one tree vs 63 unicasts out of one injection fiber
    tree_t = compiled_multicast_completion_time(
        topo, broadcast_pattern(64, size=size), params
    )
    uni_t = compiled_completion_time(
        topo,
        RequestSet.from_pairs([(0, d) for d in range(1, 64)], size=size),
        params, scheduler="coloring",
    )
    rows.append(("broadcast 1->63", tree_t.degree, tree_t.completion_time,
                 uni_t.degree, uni_t.completion_time))

    # row multicast: 8 disjoint trees in one slot
    tree_t = compiled_multicast_completion_time(
        topo, row_multicast_pattern(8, 8, size=size), params
    )
    uni_pairs = [(8 * y, x + 8 * y) for y in range(8) for x in range(1, 8)]
    uni_t = compiled_completion_time(
        topo, RequestSet.from_pairs(uni_pairs, size=size), params,
        scheduler="coloring",
    )
    rows.append(("row multicast x8", tree_t.degree, tree_t.completion_time,
                 uni_t.degree, uni_t.completion_time))

    # allgather: 64 spanning trees vs full all-to-all
    tree_t = compiled_multicast_completion_time(
        topo, all_broadcast_pattern(64, size=size), params
    )
    uni_t = compiled_completion_time(
        topo, all_to_all_pattern(64, size=size), params
    )
    rows.append(("allgather", tree_t.degree, tree_t.completion_time,
                 uni_t.degree, uni_t.completion_time))

    print(format_table(
        ["collective", "tree K", "tree slots", "unicast K", "unicast slots"],
        rows,
        title=f"Collectives, {size}-element messages on the 8x8 torus",
    ))

    # Peek at the fanout hardware: the broadcast root's switch drives
    # several outputs from the PE input in slot 0.
    conns = route_multicasts(topo, broadcast_pattern(64))
    regs = generate_multicast_registers(topo, greedy_schedule(conns))
    word = regs.words[0][0]
    print(f"\nswitch 0, slot 0 register word (output-port sets per input): {word}")
    fanout = max(len(outs) for outs in word)
    print(f"the PE input splits {fanout} ways -- that fanout is what buys "
          "the one-slot broadcast")


if __name__ == "__main__":
    main()
