"""Scenario: why fixed-degree dynamic control cannot win.

The paper's section-4 argument in one picture: every pattern has its
own optimal multiplexing degree.  Small-message patterns want a low
degree (bandwidth per slot matters, conflicts are rare); dense patterns
want a high degree (conflicts dominate).  A dynamic network must fix
one degree for all of them; compiled communication adapts per pattern.

This example sweeps the dynamic degree over several patterns and prints
where each pattern's optimum lands, alongside the compiled time and the
degree the combined scheduler picked.

Run:  python examples/degree_explorer.py
"""

from repro import SimParams, Torus2D, compiled_completion_time, simulate_dynamic
from repro.analysis.tables import format_table
from repro.patterns import (
    all_to_all_pattern,
    hypercube_pattern,
    nearest_neighbour_2d,
    ring_pattern,
)

DEGREES = (1, 2, 4, 8, 16)


def main() -> None:
    topo = Torus2D(8)
    params = SimParams()
    patterns = {
        "ring (64-element msgs)": ring_pattern(64, size=64),
        "stencil (16-element msgs)": nearest_neighbour_2d(8, 8, size=16),
        "hypercube (small msgs)": hypercube_pattern(64, size=4),
        "all-to-all (small msgs)": all_to_all_pattern(64, size=4),
    }

    rows = []
    for name, requests in patterns.items():
        dynamic = {
            k: simulate_dynamic(topo, requests, k, params).completion_time
            for k in DEGREES
        }
        best_k = min(dynamic, key=dynamic.get)
        compiled = compiled_completion_time(topo, requests, params)
        rows.append((
            name,
            *(dynamic[k] for k in DEGREES),
            f"K={best_k}",
            compiled.completion_time,
            compiled.degree,
        ))

    print(format_table(
        ["pattern", *(f"dyn K={k}" for k in DEGREES), "best dyn",
         "compiled", "compiled K"],
        rows,
        title="Communication time (slots) vs multiplexing degree",
    ))

    best_degrees = {row[len(DEGREES) + 1] for row in rows}
    print(f"\n{len(best_degrees)} different optimal dynamic degrees across "
          f"{len(rows)} patterns -- no single fixed degree suits them all, "
          "while the compiled column adapts (and wins everywhere).")


if __name__ == "__main__":
    main()
