"""Scenario: the full compiled-communication toolchain, file to photons.

A real deployment separates three roles:

1. the **compiler** recognises a pattern, schedules it, and writes an
   artifact file (schedule + switch register images);
2. the **loader** on the machine reads the file, audits it (the
   register bits must establish exactly the declared circuits -- a
   corrupted file must not program the switches), and installs it;
3. the **network** then just runs: this example drives the simulator
   directly from the audited register words, not from any in-memory
   schedule object.

Run:  python examples/toolchain.py
"""

import json
import tempfile
from pathlib import Path

from repro import SimParams, Torus2D
from repro.compiler import load_artifact, save_artifact
from repro.compiler.recognition import recognize
from repro.core import get_scheduler, route_requests
from repro.simulator import simulate_registers


def main() -> None:
    topo = Torus2D(8)
    params = SimParams()
    workdir = Path(tempfile.mkdtemp(prefix="repro-toolchain-"))
    artifact_path = workdir / "transpose.json"

    # --- compile side -------------------------------------------------
    spec = {"pattern": "transpose", "width": 8, "size": 32}
    requests = recognize(spec)
    connections = route_requests(topo, requests)
    schedule = get_scheduler("combined")(connections, topo)
    schedule.validate(connections)
    save_artifact(artifact_path, topo, schedule, name=json.dumps(spec))
    size_kb = artifact_path.stat().st_size / 1024
    print(f"compiled {len(requests)} transpose connections at degree "
          f"{schedule.degree}; artifact {artifact_path.name} ({size_kb:.1f} KiB)")

    # --- load side ------------------------------------------------------
    loaded_schedule, regs = load_artifact(artifact_path, topo)
    print(f"loaded and audited: {loaded_schedule.degree} register words per "
          f"switch across {len(regs.words)} switches")

    # --- run side: drive the network from the register bits ------------
    result = simulate_registers(topo, regs, requests, params)
    print(f"register-driven run: all {len(result.messages)} messages in "
          f"{result.completion_time} slots")

    # --- tamper check ----------------------------------------------------
    doc = json.loads(artifact_path.read_text())
    doc["registers"]["words"]["0"][0][0] = -1  # dark one circuit
    tampered = workdir / "tampered.json"
    tampered.write_text(json.dumps(doc))
    try:
        load_artifact(tampered, topo)
    except Exception as exc:
        print(f"tampered artifact rejected: {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main()
