"""Scenario: the communication plan of an iterative stencil solver.

A Gauss-Seidel-style solver on a 256x256 grid over 64 PEs alternates
two static patterns per iteration: a boundary-row exchange with the
strip neighbours (the paper's GS pattern) and a hypercube allreduce for
the convergence test.  Compiled communication gives each phase its own
multiplexing degree -- 2 for the exchange, ~7 for the reduction -- and
the network reconfigures between them by swapping preloaded register
images, with no run-time control at all.

The example also prints one switch's actual register words, the
circular-shift-register contents the code generator emits.

Run:  python examples/stencil_solver.py
"""

from repro import SimParams, Torus2D
from repro.compiler import CommPhase, compile_program, decode_registers
from repro.compiler.recognition import recognize


def main() -> None:
    topo = Torus2D(8)
    params = SimParams()
    grid = 256
    iterations = 100

    # What a compiler's pattern recognition would extract:
    boundary = recognize({
        "pattern": "pairs",
        "pairs": [(i, i + 1) for i in range(63)] + [(i + 1, i) for i in range(63)],
        "size": grid,  # one boundary row per neighbour
    })
    allreduce = recognize({"pattern": "hypercube", "nodes": 64, "size": 2})

    program = compile_program(topo, [
        CommPhase("boundary-exchange", boundary, repetitions=iterations),
        CommPhase("convergence-allreduce", allreduce, repetitions=iterations),
    ])

    print(f"solver: {grid}x{grid} grid, {iterations} iterations on {topo.signature}")
    for phase in program.phases:
        print(f"  phase {phase.phase.name!r}: {len(phase.phase.requests)} "
              f"connections, degree {phase.degree}, "
              f"{phase.makespan(params)} slots/iteration")
    total = program.communication_time(params)
    print(f"total communication: {total} slots over {iterations} iterations")

    # Peek at the run-time artifact: switch 9's register image for the
    # boundary phase (one word per slot; -1 marks a dark input port).
    phase = program.phases[0]
    words = phase.registers.words[9]
    print(f"\nswitch 9 register image for {phase.phase.name!r}:")
    for slot, word in enumerate(words):
        print(f"  slot {slot}: {word}")

    # Audit: trace the light paths the registers establish and confirm
    # they are exactly the scheduled boundary connections.
    traced = decode_registers(phase.registers)
    established = set().union(*traced)
    assert established == set(boundary.pairs)
    print(f"\nregister audit: {len(established)} circuits traced, "
          "all match the compiled schedule")


if __name__ == "__main__":
    main()
