"""Quickstart: schedule a communication pattern on a TDM optical torus.

The 30-second tour of the library: build the paper's 8x8 torus, take a
static communication pattern, run the off-line connection schedulers,
and see the multiplexing degree each needs -- then push the winning
schedule through the cycle-level simulator and compare against dynamic
(run-time reservation) control.

Run:  python examples/quickstart.py
"""

from repro import (
    SimParams,
    Torus2D,
    compiled_completion_time,
    get_scheduler,
    route_requests,
    simulate_dynamic,
)
from repro.patterns import hypercube_pattern


def main() -> None:
    # The machine: an 8x8 torus of 5x5 electro-optical crossbar switches.
    topo = Torus2D(8)

    # A static pattern a compiler might extract: hypercube exchange
    # (every PE talks to the 6 PEs differing in one address bit),
    # 8 elements per message.
    pattern = hypercube_pattern(64, size=8)
    print(f"pattern: {pattern.name}, {len(pattern)} connections")

    # Route once; every scheduler works on the same fixed light paths.
    connections = route_requests(topo, pattern)

    # The paper's four schedulers: fewer configurations = smaller TDM
    # multiplexing degree = faster communication.
    print("\nmultiplexing degree by scheduler:")
    for name in ("greedy", "coloring", "aapc", "combined"):
        schedule = get_scheduler(name)(connections, topo)
        schedule.validate(connections)  # conflict-free and complete
        print(f"  {name:10s} K = {schedule.degree}")

    # Compiled communication: registers preloaded, zero control traffic.
    params = SimParams()
    compiled = compiled_completion_time(topo, pattern, params)
    print(f"\ncompiled communication: {compiled.completion_time} slots "
          f"(degree {compiled.degree})")

    # Dynamic control must pick a fixed degree without knowing the
    # pattern -- and pays reservation round-trips per message.
    print("dynamic control:")
    for degree in (1, 2, 5, 10):
        result = simulate_dynamic(topo, pattern, degree, params)
        ratio = result.completion_time / compiled.completion_time
        print(f"  K = {degree:2d}: {result.completion_time:5d} slots "
              f"({ratio:.1f}x compiled, {result.total_retries} retries)")


if __name__ == "__main__":
    main()
