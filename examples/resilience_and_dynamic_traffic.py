"""Scenario: life beyond static patterns -- failures and dynamic traffic.

Two situations the basic compiled-communication story does not cover,
both handled by this library's extensions:

1. **A fiber fails.**  The compiler reroutes around the cut (YX order,
   the long way round a ring, or a full detour) and reschedules; the
   pattern's multiplexing degree degrades gracefully instead of the
   network failing.  The link heatmap shows the traffic shifting.

2. **Messages appear at run time.**  The paper sketches two mechanisms
   built on statically compiled multiplexed sequences: keep the 64-slot
   all-to-all frame standing (any pair can always talk), or embed a
   logical hypercube (8-slot frame) and forward store-and-forward.
   This example races them against the full run-time reservation
   protocol on the same random message stream.

Run:  python examples/resilience_and_dynamic_traffic.py
"""

from repro import SimParams, Torus2D
from repro.analysis import format_table, render_link_heatmap
from repro.core import combined_schedule, route_requests
from repro.core.requests import Request, RequestSet
from repro.dynamic_patterns import (
    MultihopEmulation,
    StandingAllToAll,
    random_online_workload,
)
from repro.patterns import nearest_neighbour_2d
from repro.simulator import simulate_dynamic, summarize
from repro.topology import FaultyTopology


def failures_demo() -> None:
    print("=" * 64)
    print("1. Fiber failures: reroute + reschedule")
    print("=" * 64)
    torus = Torus2D(8)
    requests = nearest_neighbour_2d(8, 8)

    healthy = combined_schedule(route_requests(torus, requests), torus)
    print(f"healthy network: stencil degree K = {healthy.degree}")
    print(render_link_heatmap(torus, healthy))

    faulty = FaultyTopology(Torus2D(8))
    cuts = [torus.transit_link(torus.node(x, 0), 0, True) for x in range(4)]
    for link in cuts:
        faulty.fail_link(link)
    connections = route_requests(faulty, requests)
    degraded = combined_schedule(connections, faulty)
    degraded.validate(connections)
    print(f"\nafter cutting 4 +x fibers in row 0: degree K = {degraded.degree}")
    print(render_link_heatmap(torus, degraded))
    print("(row 0's +x load moved onto detour rows; the schedule stays valid)")


def dynamic_traffic_demo() -> None:
    print()
    print("=" * 64)
    print("2. Dynamic traffic: compiled sequences vs run-time control")
    print("=" * 64)
    torus = Torus2D(8)
    params = SimParams()
    workload = random_online_workload(64, 400, mean_gap=2.0, size=4, seed=3)
    span = workload[-1].arrival
    print(f"workload: {len(workload)} x 4-element messages over ~{span} slots")

    standing = StandingAllToAll(torus).simulate(workload, params)
    multihop = MultihopEmulation(torus).simulate(workload, params)
    requests = RequestSet(
        [Request(r.src, r.dst, size=r.size, tag=i) for i, r in enumerate(workload)],
        allow_duplicates=True,
    )
    reservation = simulate_dynamic(
        torus, requests, 8, params, arrivals=[r.arrival for r in workload]
    )

    rows = []
    for label, result_messages, extra in (
        ("standing all-to-all", standing.messages, f"frame {standing.frame_length}"),
        ("multihop hypercube", multihop.messages, f"frame {multihop.frame_length}"),
        ("run-time reservation", reservation.messages,
         f"K=8, {reservation.total_retries} retries"),
    ):
        s = summarize(result_messages)
        rows.append((label, extra, s["makespan"], s["latency_mean"], s["latency_max"]))
    print(format_table(
        ["mechanism", "notes", "makespan", "mean lat", "max lat"],
        rows,
    ))
    print("\nThe compiled sequences need no control plane at all; the "
          "hypercube frame trades\nper-hop forwarding for an 8x shorter "
          "frame than standing all-to-all.")


if __name__ == "__main__":
    failures_demo()
    dynamic_traffic_demo()
