"""Scenario: compiling the communication of an HPF-style redistribution.

A data-parallel program redistributes a 64^3 array between phases --
say from the (BLOCK, BLOCK, BLOCK) layout its FFT-less phases use to
z-planes for a 1-D transform, and back.  The compiler sees both
distributions, derives the exact (source PE, dest PE, element count)
pattern, and schedules it off line.

This example walks that pipeline: distribution specs -> communication
pattern (with true message sizes) -> multiplexing degree -> compiled
program with per-phase switch registers -> communication time, compared
against run-time reservation control.

Run:  python examples/data_redistribution.py
"""

from repro import SimParams, Torus2D, simulate_dynamic
from repro.compiler import CommPhase, compile_program
from repro.patterns import BlockCyclic, Distribution, redistribution_requests


def main() -> None:
    topo = Torus2D(8)
    params = SimParams()
    extents = (64, 64, 64)

    # The two layouts, in HPF-ish notation:
    #   blocks : (:block, :block, :block) on a 4x4x4 PE grid
    #   planes : (:, :, :block)           one z-plane per PE
    blocks = Distribution(extents, (
        BlockCyclic(4, 16), BlockCyclic(4, 16), BlockCyclic(4, 16),
    ))
    planes = Distribution(extents, (
        BlockCyclic(1, 1), BlockCyclic(1, 1), BlockCyclic(64, 1),
    ))
    print(f"source layout {blocks.notation()}, target layout {planes.notation()}")

    forward = redistribution_requests(blocks, planes, name="scatter-to-planes")
    backward = redistribution_requests(planes, blocks, name="gather-to-blocks")
    volume = forward.total_elements()
    print(f"forward pattern: {len(forward)} messages, {volume} elements "
          f"({min(r.size for r in forward)}..{max(r.size for r in forward)} each)")

    # Compile both phases: each gets its own multiplexing degree and its
    # own switch-register image (the run-time artifact).
    program = compile_program(topo, [
        CommPhase("scatter", forward),
        CommPhase("gather", backward),
    ])
    for phase in program.phases:
        regs = phase.registers
        print(f"phase {phase.phase.name!r}: degree {phase.degree}, "
              f"{len(regs.words)} switches x {regs.degree} register words, "
              f"{phase.makespan(params)} slots")
    total = program.communication_time(params)
    print(f"compiled program total: {total} slots")

    # The dynamic alternative, at the degrees the paper evaluates.
    print("\ndynamic control (forward phase only):")
    for degree in (1, 2, 5, 10):
        result = simulate_dynamic(topo, forward, degree, params)
        print(f"  K = {degree:2d}: {result.completion_time:5d} slots, "
              f"{result.total_retries} failed reservations")
    fwd_compiled = program.phases[0].makespan(params)
    print(f"\ncompiled forward phase: {fwd_compiled} slots -- "
          "the off-line schedule wins at every fixed degree")


if __name__ == "__main__":
    main()
