"""Tests for the synchronous compile core (canonicalize -> cache -> run)."""

import pytest

from repro.compiler.serialize import schedule_from_dict
from repro.core import perf
from repro.service.cache import ArtifactCache
from repro.service.canonical import canonicalize, node_permutation, translation_group
from repro.service.compile import CompileService, compile_digest, compile_pattern
from repro.patterns.classic import ring_pattern, transpose_pattern
from repro.service.specs import (
    TopologySpecError,
    topology_from_spec,
    topology_to_spec,
)
from repro.topology.faults import FaultyTopology
from repro.topology.mesh import Mesh2D
from repro.topology.torus import Torus2D


@pytest.fixture()
def torus():
    return Torus2D(4)


class TestDigest:
    def test_deterministic(self, torus):
        reqs = [(0, 1, 2, 0), (5, 10, 1, 0)]
        c = canonicalize(torus, reqs)
        assert compile_digest(torus, c, "combined", None) == compile_digest(
            torus, c, "combined", None
        )

    def test_translated_variants_share_digest(self, torus):
        base = transpose_pattern(4)
        shift = next(t for t in translation_group(torus) if any(t))
        sigma = node_permutation(torus, shift)
        moved = [(sigma[r.src], sigma[r.dst], r.size, r.tag) for r in base]
        assert compile_digest(
            torus, canonicalize(torus, base), "combined", None
        ) == compile_digest(torus, canonicalize(torus, moved), "combined", None)

    def test_scheduler_and_kernel_and_topology_key(self, torus):
        c = canonicalize(torus, [(0, 1, 1, 0)])
        base = compile_digest(torus, c, "combined", None)
        assert compile_digest(torus, c, "coloring", None) != base
        assert compile_digest(torus, c, "combined", "set") != base
        other = Torus2D(8)
        c8 = canonicalize(other, [(0, 1, 1, 0)])
        assert compile_digest(other, c8, "combined", None) != base

    def test_golden_digest_pinned(self, torus):
        # Pins the whole digest pipeline (canonical packing, topology
        # signature, header layout).  A change here invalidates every
        # existing cache directory -- bump FORMAT_VERSION when that is
        # intended.
        c = canonicalize(torus, [(0, 1, 1, 0), (2, 3, 4, 5)])
        assert (
            compile_digest(torus, c, "combined", None)
            == "5416e7021428f2912168fdf2a9b437b5b5abbb20e500bb4bf8d7f74ba33c5bc4"
        )


class TestCompilePattern:
    def test_cold_then_warm_byte_identical(self, torus):
        cache = ArtifactCache()
        reqs = transpose_pattern(4)
        cold = compile_pattern(torus, reqs, cache=cache, include_registers=True)
        warm = compile_pattern(torus, reqs, cache=cache, include_registers=True)
        assert cold.cache == "miss" and warm.cache == "hit"
        assert warm.schedule_doc == cold.schedule_doc
        assert warm.registers_doc == cold.registers_doc

    def test_translated_hit_serves_callers_node_ids(self, torus):
        cache = ArtifactCache()
        base = transpose_pattern(4)
        compile_pattern(torus, base, cache=cache)
        shift = next(t for t in translation_group(torus) if any(t))
        sigma = node_permutation(torus, shift)
        moved = [(sigma[r.src], sigma[r.dst], r.size, r.tag) for r in base]
        hit = compile_pattern(torus, moved, cache=cache)
        assert hit.cache == "hit"
        served = {
            (e["src"], e["dst"]) for slot in hit.schedule_doc["slots"] for e in slot
        }
        assert served == {(s, d) for s, d, _, _ in moved}
        loaded, _ = schedule_from_dict(torus, hit.schedule_doc)  # re-validates
        assert loaded.degree == hit.degree

    def test_no_cache_still_compiles(self, torus):
        result = compile_pattern(torus, ring_pattern(16))
        assert result.cache == "miss"
        assert result.degree >= 1

    def test_registers_upgrade_in_place(self, torus):
        cache = ArtifactCache()
        reqs = ring_pattern(16)
        first = compile_pattern(torus, reqs, cache=cache)
        assert first.registers_doc is None
        upgraded = compile_pattern(torus, reqs, cache=cache, include_registers=True)
        assert upgraded.cache == "miss"  # schedule-only entry insufficient
        assert upgraded.registers_doc is not None
        warm = compile_pattern(torus, reqs, cache=cache, include_registers=True)
        assert warm.cache == "hit"
        assert warm.registers_doc == upgraded.registers_doc

    def test_schedule_only_request_hits_register_entry(self, torus):
        cache = ArtifactCache()
        reqs = ring_pattern(16)
        compile_pattern(torus, reqs, cache=cache, include_registers=True)
        warm = compile_pattern(torus, reqs, cache=cache)
        assert warm.cache == "hit"
        assert warm.registers_doc is None  # not asked for

    def test_counters_without_cache(self, torus):
        perf.reset()
        compile_pattern(torus, ring_pattern(16))
        assert perf.COUNTERS.artifact_cache_misses == 1

    def test_mesh_identity_canonicalization(self):
        # No translation symmetry: second call must still hit (sorted
        # request order is the whole canonical form).
        mesh = Mesh2D(4)
        cache = ArtifactCache()
        reqs = [(0, 5, 1, 0), (10, 3, 2, 0)]
        compile_pattern(mesh, reqs, cache=cache)
        assert compile_pattern(mesh, list(reversed(reqs)), cache=cache).cache == "hit"


class TestCompileService:
    def test_latency_buckets(self, torus):
        service = CompileService(ArtifactCache())
        reqs = ring_pattern(16)
        service.compile(torus, reqs)
        service.compile(torus, reqs)
        stats = service.stats()
        assert stats["latency"]["miss"]["count"] == 1
        assert stats["latency"]["hit"]["count"] == 1
        assert stats["latency"]["hit"]["mean_seconds"] > 0.0
        assert stats["cache"]["hits"] == 1


class TestTopologySpecs:
    @pytest.mark.parametrize(
        "spec",
        [
            {"kind": "torus", "width": 4},
            {"kind": "torus", "width": 4, "height": 8, "tie_break": "positive"},
            {"kind": "mesh", "width": 4},
            {"kind": "ring", "nodes": 8},
            {"kind": "linear", "nodes": 5},
            {"kind": "omega", "nodes": 8},
            {"kind": "kary", "dims": [4, 4, 2]},
            {
                "kind": "faulty",
                "base": {"kind": "torus", "width": 4},
                "failed": [33],
            },
        ],
    )
    def test_roundtrip(self, spec):
        topo = topology_from_spec(spec)
        again = topology_from_spec(topology_to_spec(topo))
        assert again.signature == topo.signature

    def test_faulty_preserves_failed_links(self):
        topo = topology_from_spec(
            {"kind": "faulty", "base": {"kind": "torus", "width": 4}, "failed": [33]}
        )
        assert isinstance(topo, FaultyTopology)
        assert 33 in topo.failed_links

    def test_unknown_kind_rejected(self):
        with pytest.raises(TopologySpecError, match="unknown topology kind"):
            topology_from_spec({"kind": "moebius", "nodes": 8})

    def test_missing_key_rejected(self):
        with pytest.raises(TopologySpecError, match="missing key"):
            topology_from_spec({"kind": "torus"})

    def test_bad_tie_break_rejected(self):
        with pytest.raises(TopologySpecError, match="tie_break"):
            topology_from_spec({"kind": "ring", "nodes": 8, "tie_break": "coin"})
