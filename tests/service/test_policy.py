"""Tests for retry/backoff, circuit-breaker and server policies."""

import pytest

from repro.service.errors import (
    CircuitOpen,
    Overloaded,
    ProtocolError,
    ServerError,
    ServiceTimeout,
    TransportError,
    error_fields,
    reply_error,
)
from repro.service.policy import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    ServerPolicy,
    request_digest,
)


class TestRequestDigest:
    def test_ignores_id_and_idem(self):
        base = {"op": "compile", "pattern": {"pattern": "ring"}}
        tagged = dict(base, id=7, idem="ffffffffffffffff")
        assert request_digest(base) == request_digest(tagged)

    def test_sensitive_to_body(self):
        a = {"op": "compile", "pattern": {"pattern": "ring"}}
        b = {"op": "compile", "pattern": {"pattern": "transpose"}}
        assert request_digest(a) != request_digest(b)

    def test_key_order_irrelevant(self):
        assert request_digest({"a": 1, "b": 2}) == request_digest({"b": 2, "a": 1})

    def test_is_short_hex(self):
        digest = request_digest({"op": "ping"})
        assert len(digest) == 16
        int(digest, 16)


class TestRetryPolicy:
    def test_full_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0)
        assert policy.delay(0, rng=lambda: 0.0) == 0.0
        assert policy.delay(0, rng=lambda: 1.0) == pytest.approx(0.1)
        assert policy.delay(2, rng=lambda: 1.0) == pytest.approx(0.4)
        # the per-delay ceiling caps the exponential growth
        assert policy.delay(30, rng=lambda: 1.0) == pytest.approx(1.0)

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(base_delay=0.1)
        assert policy.delay(0, retry_after=0.5, rng=lambda: 0.0) == 0.5

    def test_retryable_taxonomy(self):
        policy = RetryPolicy()
        assert policy.retryable(ServiceTimeout("slow"))
        assert policy.retryable(Overloaded("shed"))
        assert policy.retryable(TransportError("reset"))
        assert not policy.retryable(ServerError("bug"))
        assert not policy.retryable(ProtocolError("bad frame"))
        assert not policy.retryable(ConnectionResetError())  # untyped

    def test_plan_gives_up_after_attempts(self):
        policy = RetryPolicy(attempts=3)
        exc = TransportError("reset")
        assert policy.plan(exc, 0, 0.0, rng=lambda: 0.5) is not None
        assert policy.plan(exc, 1, 0.0, rng=lambda: 0.5) is not None
        assert policy.plan(exc, 2, 0.0, rng=lambda: 0.5) is None

    def test_plan_gives_up_on_non_retryable(self):
        policy = RetryPolicy(attempts=10)
        assert policy.plan(ServerError("bug"), 0, 0.0) is None

    def test_plan_respects_budget(self):
        policy = RetryPolicy(attempts=10, base_delay=1.0, budget_seconds=2.0)
        exc = ServiceTimeout("slow")
        assert policy.plan(exc, 0, 1.5, rng=lambda: 1.0) is None
        assert policy.plan(exc, 0, 0.5, rng=lambda: 1.0) == pytest.approx(1.0)

    def test_plan_honours_retry_after_hint(self):
        policy = RetryPolicy(attempts=4, base_delay=0.01)
        shed = Overloaded("shed", retry_after=0.75)
        assert policy.plan(shed, 0, 0.0, rng=lambda: 0.0) == 0.75

    def test_single_attempt_never_retries(self):
        policy = RetryPolicy(attempts=1)
        assert policy.plan(ServiceTimeout("slow"), 0, 0.0) is None


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, threshold=3, reset=5.0):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=threshold, reset_timeout=reset, clock=clock
        )
        return breaker, clock

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_breaker_fast_fails(self):
        breaker, _ = self.make(threshold=1)
        breaker.record_failure()
        with pytest.raises(CircuitOpen):
            breaker.check()
        assert breaker.rejected == 1

    def test_half_open_probe_after_reset_timeout(self):
        breaker, clock = self.make(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.now += 4.9
        with pytest.raises(CircuitOpen):
            breaker.check()
        clock.now += 0.1
        breaker.check()  # probe admitted
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.now += 1.0
        breaker.check()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.check()  # closed breaker admits freely

    def test_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=5, reset=1.0)
        for _ in range(5):
            breaker.record_failure()
        clock.now += 1.0
        breaker.check()
        breaker.record_failure()  # one probe failure is enough
        assert breaker.state == OPEN
        assert breaker.trips == 2
        with pytest.raises(CircuitOpen):
            breaker.check()

    def test_as_dict_snapshot(self):
        breaker, _ = self.make(threshold=1)
        breaker.record_failure()
        out = breaker.as_dict()
        assert out["state"] == OPEN
        assert out["trips"] == 1


class TestErrorTaxonomy:
    def test_wire_round_trip(self):
        for exc in (
            ServerError("bug"),
            ProtocolError("bad frame"),
            ServiceTimeout("slow"),
            TransportError("reset"),
        ):
            reply = {"ok": False, **error_fields(exc)}
            back = reply_error(reply)
            assert type(back) is type(exc)
            assert back.retryable == exc.retryable

    def test_overloaded_carries_retry_after(self):
        fields = error_fields(Overloaded("shed", retry_after=0.5))
        assert fields["retry_after"] == 0.5
        back = reply_error({"ok": False, **fields})
        assert isinstance(back, Overloaded)
        assert back.retry_after == 0.5

    def test_plain_value_error_maps_to_protocol(self):
        assert error_fields(ValueError("unknown pattern"))["error_type"] == "protocol"

    def test_unknown_exception_maps_to_server_error(self):
        assert error_fields(KeyError("oops"))["error_type"] == "server_error"

    def test_unknown_code_decodes_as_server_error(self):
        back = reply_error({"ok": False, "error": "x", "error_type": "mystery"})
        assert type(back) is ServerError

    def test_legacy_except_clauses_still_match(self):
        with pytest.raises(ValueError):
            raise ProtocolError("bad frame")
        with pytest.raises(TimeoutError):
            raise ServiceTimeout("slow")
        with pytest.raises(ConnectionError):
            raise TransportError("reset")

    def test_exit_codes(self):
        assert ProtocolError.exit_code == 65
        assert ServiceTimeout.exit_code == 124
        assert Overloaded.exit_code == 75
        assert CircuitOpen.exit_code == 75
        assert ServerError.exit_code == 69


class TestServerPolicy:
    def test_defaults(self):
        policy = ServerPolicy()
        assert policy.request_deadline == 60.0
        assert policy.max_pending == 64
        assert policy.max_frame_bytes == 64 * 1024 * 1024

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ServerPolicy().max_pending = 1
