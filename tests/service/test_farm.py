"""Tests for the distributed compile farm (sharding, replication,
failover, and the shard-map-carrying client)."""

import asyncio

import pytest

from repro.service.cache import ArtifactCache
from repro.service.client import AsyncCompileClient
from repro.service.errors import (
    EpochConflict,
    ProtocolError,
    ServiceError,
    WrongShard,
)
from repro.service.farm import (
    AsyncFarmClient,
    Farm,
    HashRing,
    ShardMap,
    route_digest,
    sum_stats,
)

TORUS4 = {"kind": "torus", "width": 4}
RING16 = {"pattern": "ring", "nodes": 16}


def run(coro):
    return asyncio.run(coro)


async def with_farm(fn, **farm_kwargs):
    farm_kwargs.setdefault("workers", 0)
    farm = Farm(**farm_kwargs)
    await farm.start()
    try:
        return await fn(farm)
    finally:
        await farm.shutdown()


# ----------------------------------------------------------------------
# placement units
# ----------------------------------------------------------------------

class TestHashRing:
    NODES = ["node0", "node1", "node2", "node3"]

    def test_owners_deterministic_and_distinct(self):
        ring = HashRing(self.NODES)
        owners = ring.owners("a" * 64, 2)
        assert owners == ring.owners("a" * 64, 2)
        assert len(owners) == 2 and len(set(owners)) == 2
        assert all(o in self.NODES for o in owners)

    def test_count_clamped_to_ring_size(self):
        ring = HashRing(["only"])
        assert ring.owners("b" * 64, 3) == ["only"]
        assert HashRing([]).owners("c" * 64, 2) == []

    def test_all_nodes_receive_keys(self):
        ring = HashRing(self.NODES)
        primaries = {ring.owners(f"{i:064x}", 1)[0] for i in range(512)}
        assert primaries == set(self.NODES)

    def test_node_loss_moves_only_its_keys(self):
        """Consistent hashing: removing a node must not reshuffle keys
        whose owner survives."""
        full = HashRing(self.NODES)
        smaller = HashRing([n for n in self.NODES if n != "node0"])
        for i in range(256):
            digest = f"{i:064x}"
            before = full.owners(digest, 1)[0]
            after = smaller.owners(digest, 1)[0]
            if before != "node0":
                assert after == before

    def test_order_insensitive(self):
        a = HashRing(["x", "y", "z"])
        b = HashRing(["z", "x", "y"])
        assert a.owners("d" * 64, 2) == b.owners("d" * 64, 2)


class TestShardMap:
    def make(self):
        return ShardMap(
            {"node0": {"host": "127.0.0.1", "port": 1},
             "node1": {"host": "127.0.0.1", "port": 2}},
            replication=2, version=3,
        )

    def test_roundtrip(self):
        m = self.make()
        again = ShardMap.from_dict(m.as_dict())
        assert again.version == 3 and again.replication == 2
        assert again.nodes == m.nodes
        assert again.owners("e" * 64) == m.owners("e" * 64)

    def test_without_bumps_version(self):
        m = self.make()
        smaller = m.without("node0")
        assert smaller.version == 4
        assert set(smaller.nodes) == {"node1"}
        assert m.version == 3  # the old map is untouched

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            ShardMap.from_dict({"version": 1})


class TestRouteDigest:
    def test_compile_matches_server_digest(self):
        """The route digest must be the digest the node caches under --
        otherwise ownership and storage disagree."""
        async def go(farm):
            async with farm.client() as c:
                reply = await c.compile(TORUS4, pattern=RING16)
            req = {"op": "compile", "topology": TORUS4, "pattern": RING16}
            assert route_digest(req) == reply["digest"]
        run(with_farm(go, nodes=2))

    def test_amend_routes_on_root(self):
        assert route_digest({"op": "amend", "root": "r" * 64}) == "r" * 64

    def test_non_shardable_ops(self):
        assert route_digest({"op": "ping"}) is None
        with pytest.raises(ProtocolError):
            route_digest({"op": "compile"})  # no topology


class TestSumStats:
    def test_numeric_leaves_summed_flags_skipped(self):
        total = sum_stats([
            {"requests": 2, "cache": {"hits": 1}, "name": "a", "ready": True},
            {"requests": 3, "cache": {"hits": 4, "misses": 1}, "name": "b"},
        ])
        assert total == {"requests": 5, "cache": {"hits": 5, "misses": 1}}


# ----------------------------------------------------------------------
# sharded serving
# ----------------------------------------------------------------------

class TestSharding:
    def test_non_owner_refuses_with_wrong_shard(self):
        async def go(farm):
            req = {"op": "compile", "topology": TORUS4, "pattern": RING16}
            digest = route_digest(req)
            owners = farm.router.shard_map.owners(digest)
            outsider = next(
                n for n in farm.nodes if n not in owners
            )
            host, port = farm.nodes[outsider].address
            async with AsyncCompileClient(host, port, retry=None) as c:
                with pytest.raises(WrongShard) as excinfo:
                    await c.request(dict(req))
            assert excinfo.value.owners == owners
            assert excinfo.value.shard_map["version"] == 1
            assert farm.nodes[outsider].wrong_shard == 1
        run(with_farm(go, nodes=3, replication=2))

    def test_cold_compile_replicates_to_all_owners(self):
        async def go(farm):
            async with farm.client() as c:
                reply = await c.compile(TORUS4, pattern=RING16)
            digest = reply["digest"]
            owners = farm.router.shard_map.owners(digest)
            assert len(owners) == 2
            # replication is fire-and-forget: wait for the push tasks.
            for node in farm.nodes.values():
                if node._repl_tasks:
                    await asyncio.gather(
                        *node._repl_tasks, return_exceptions=True
                    )
            for name in owners:
                assert digest in farm.nodes[name].cache
            pushed = sum(n.replicas_pushed for n in farm.nodes.values())
            received = sum(n.replicas_received for n in farm.nodes.values())
            assert pushed == 1 and received == 1
        run(with_farm(go, nodes=3, replication=2))

    def test_read_repair_adopts_peer_replica(self):
        async def go(farm):
            req = {"op": "compile", "topology": TORUS4, "pattern": RING16}
            digest = route_digest(req)
            first, second = farm.router.shard_map.owners(digest)
            # Seed via the *second* owner (ownership allows any owner
            # to serve/compile), let replication settle, then wipe the
            # first owner's copy to stage the lost-replica state.
            h2, p2 = farm.nodes[second].address
            async with AsyncCompileClient(h2, p2, retry=None) as c:
                seeded = await c.request(dict(req))
            assert seeded["cache"] == "miss"
            for node in farm.nodes.values():
                if node._repl_tasks:
                    await asyncio.gather(
                        *node._repl_tasks, return_exceptions=True
                    )
            farm.nodes[first].cache._memory.clear()
            # The first owner misses locally and must repair from its
            # peer instead of recompiling.
            h1, p1 = farm.nodes[first].address
            async with AsyncCompileClient(h1, p1, retry=None) as c:
                repaired = await c.request(dict(req))
            assert repaired["cache"] == "hit"
            assert repaired["schedule"] == seeded["schedule"]
            assert farm.nodes[first].read_repairs == 1
            assert digest in farm.nodes[first].cache
        run(with_farm(go, nodes=3, replication=2))


# ----------------------------------------------------------------------
# failover
# ----------------------------------------------------------------------

class TestFailover:
    def test_router_demotes_dead_node_and_retries(self):
        async def go(farm):
            req = {"op": "compile", "topology": TORUS4, "pattern": RING16}
            digest = route_digest(req)
            primary = farm.router.shard_map.owners(digest)[0]
            await farm.kill_node(primary)
            # Router-only client: the router must detect the dead
            # primary, demote it, and answer from a surviving owner.
            async with AsyncCompileClient(*farm.router_address) as c:
                reply = await c.request(dict(req))
            assert reply["ok"] and reply["digest"] == digest
            assert farm.router.failovers == 1
            assert primary not in farm.router.shard_map.nodes
            assert farm.router.shard_map.version == 2
            # Survivors adopted the new map via the reshard push.
            for node in farm.nodes.values():
                assert node.shard_map.version == 2
        run(with_farm(go, nodes=3, replication=2))

    def test_farm_client_falls_back_and_refreshes_map(self):
        async def go(farm):
            async with farm.client() as c:
                assert c.shard_map is not None and c.shard_map.version == 1
                victim = sorted(farm.nodes)[0]
                await farm.kill_node(victim)
                # Drive requests until one would have hit the dead node;
                # each must still succeed (direct or via router).
                for i in range(6):
                    reply = await c.compile(
                        TORUS4, pairs=[[i, (i + 5) % 16], [(i + 1) % 16, i]]
                    )
                    assert reply["ok"]
                if farm.router.failovers:
                    assert c.shard_map.version >= 2
        run(with_farm(go, nodes=3, replication=2))

    def test_stale_client_map_redirected_by_wrong_shard(self):
        async def go(farm):
            # A client whose map disagrees on placement (vnodes=1 ring,
            # version 0) aims at wrong nodes; WrongShard replies must
            # teach it the real map in-line.
            bad_map = ShardMap(
                farm.router.shard_map.nodes, replication=1, version=0,
                vnodes=1,
            )
            client = AsyncFarmClient(farm.router_address, shard_map=bad_map)
            try:
                for i in range(8):
                    reply = await client.compile(
                        TORUS4, pairs=[[i, (i + 3) % 16]]
                    )
                    assert reply["ok"]
                assert client.shard_map.version == 1
            finally:
                await client.close()
        run(with_farm(go, nodes=3, replication=2))


# ----------------------------------------------------------------------
# aggregated stats (the router's stats verb)
# ----------------------------------------------------------------------

class TestAggregatedStats:
    def test_per_node_breakdown_plus_totals(self):
        async def go(farm):
            async with farm.client() as c:
                await c.compile(TORUS4, pattern=RING16)
                await c.compile(TORUS4, pattern=RING16)  # warm hit
                stats = await c.stats()
            assert set(stats["nodes"]) == set(farm.nodes)
            for doc in stats["nodes"].values():
                assert "counters" in doc and "farm" in doc
            totals = stats["farm"]
            assert totals["requests"] == sum(
                doc["requests"] for doc in stats["nodes"].values()
            )
            assert totals["cache"]["hits"] >= 1
            router = stats["router"]
            assert router["live_nodes"] == 3
            assert stats["down"] == []
        run(with_farm(go, nodes=3, replication=2))

    def test_dead_node_reported_down(self):
        async def go(farm):
            await farm.kill_node("node1")
            async with AsyncCompileClient(*farm.router_address) as c:
                stats = await c.request({"op": "stats"})
            assert stats["down"] == ["node1"]
            assert "node1" not in stats["nodes"]
        run(with_farm(go, nodes=3))


# ----------------------------------------------------------------------
# amends through the farm (satellite: concurrency safety)
# ----------------------------------------------------------------------

class TestFarmAmend:
    PAIRS = [[i, (i + 1) % 16] for i in range(16)]

    def test_amend_pinned_to_primary(self):
        async def go(farm):
            async with farm.client() as c:
                opened = await c.amend(TORUS4, pairs=self.PAIRS)
                root = opened["root"]
                primary = farm.router.shard_map.owners(root)[0]
                assert len(farm.nodes[primary].amends) == 1
                bumped = await c.amend(root=root, epoch=0, add=[[0, 5]])
                assert bumped["epoch"] == 1
        run(with_farm(go, nodes=3, replication=2))

    def test_concurrent_amends_surface_epoch_conflict(self):
        """Two writers racing on one epoch: exactly one wins, the loser
        gets a typed EpochConflict, and the stream stays consistent --
        regardless of which node owns the stream."""
        async def go(farm):
            async with farm.client() as opener:
                opened = await opener.amend(TORUS4, pairs=self.PAIRS)
                root = opened["root"]

            async def racer(i):
                async with farm.client() as c:
                    return await c.amend(
                        root=root, epoch=0, add=[[i, (i + 7) % 16]]
                    )

            results = await asyncio.gather(
                *(racer(i) for i in range(4)), return_exceptions=True
            )
            wins = [r for r in results if isinstance(r, dict)]
            losses = [r for r in results if isinstance(r, EpochConflict)]
            assert len(wins) == 1 and wins[0]["epoch"] == 1
            assert len(losses) == 3
            assert all(exc.current_epoch == 1 for exc in losses)
            # No corruption: the stream advances cleanly from epoch 1.
            async with farm.client() as c:
                after = await c.amend(root=root, epoch=1, add=[[3, 9]])
                assert after["epoch"] == 2
        run(with_farm(go, nodes=3, replication=2))

    def test_amend_epoch_conflicts_never_retried(self):
        async def go(farm):
            async with farm.client() as c:
                opened = await c.amend(TORUS4, pairs=self.PAIRS)
                await c.amend(root=opened["root"], epoch=0, add=[[0, 5]])
                with pytest.raises(EpochConflict):
                    await c.amend(root=opened["root"], epoch=0, add=[[1, 6]])
                primary = farm.router.shard_map.owners(opened["root"])[0]
                assert farm.nodes[primary].amends.conflicts == 1
        run(with_farm(go, nodes=3, replication=2))


# ----------------------------------------------------------------------
# byte-transparency of the router hop
# ----------------------------------------------------------------------

class TestRouterTransparency:
    def test_idem_and_payload_hash_survive_the_hop(self):
        """The client's end-to-end integrity checks must hold across
        client -> router -> node, which only works if the router relays
        raw bytes (AsyncCompileClient verifies both fields itself and
        raises TransportError on any mismatch)."""
        async def go(farm):
            async with AsyncCompileClient(*farm.router_address) as c:
                reply = await c.compile(
                    TORUS4, pattern=RING16, registers=True
                )
            assert reply["ok"] and "payload_sha256" in reply
            assert "idem" in reply  # echoed by the node, relayed verbatim
        run(with_farm(go, nodes=3, replication=2))

    def test_router_answers_shardmap_and_ping(self):
        async def go(farm):
            async with AsyncCompileClient(*farm.router_address) as c:
                assert (await c.ping())["ok"]
                reply = await c.request({"op": "shardmap"})
                m = ShardMap.from_dict(reply["shard_map"])
                assert set(m.nodes) == set(farm.nodes)
        run(with_farm(go, nodes=2))
