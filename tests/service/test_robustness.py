"""Robustness tests: malformed input, deadlines, shedding, resilience.

The first half hammers the server with the inputs production clients
never send on purpose (oversized frames, invalid UTF-8, torn requests);
the second half exercises the client-side retry/breaker machinery
against a scripted flaky server.
"""

import asyncio
import json
import time

import pytest

from repro.service import compile as compile_mod
from repro.service.client import AsyncCompileClient, CompileClient
from repro.service.errors import (
    CircuitOpen,
    Overloaded,
    ProtocolError,
    ServiceTimeout,
    TransportError,
)
from repro.service.policy import (
    CircuitBreaker,
    RetryPolicy,
    ServerPolicy,
    request_digest,
)
from repro.service.server import CompileServer

TORUS4 = {"kind": "torus", "width": 4}
TRANSPOSE4 = {"pattern": "transpose", "width": 4}


def run(coro):
    return asyncio.run(coro)


async def with_server(fn, **server_kwargs):
    server = CompileServer(**server_kwargs)
    await server.start()
    host, port = server.address
    try:
        return await fn(server, host, port)
    finally:
        await server.shutdown()


class TestMalformedInput:
    def test_oversized_frame_typed_error_then_close(self):
        policy = ServerPolicy(max_frame_bytes=1024)

        async def go(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"op": "ping", "junk": "' + b"x" * 4096 + b'"}\n')
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["ok"] is False
            assert reply["error_type"] == "protocol"
            # The stream cannot be resynchronized: connection closes.
            assert await reader.read() == b""
            writer.close()
            await writer.wait_closed()
            # ...but the accept loop is fine.
            async with AsyncCompileClient(host, port) as c:
                assert (await c.ping())["ok"]

        run(with_server(go, policy=policy))

    def test_invalid_utf8_typed_error(self):
        async def go(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'\xff\xfe{"op": "ping"}\n')
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["ok"] is False
            assert reply["error_type"] == "protocol"
            # Same connection still serves well-formed requests.
            writer.write(b'{"op": "ping", "id": 2}\n')
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["ok"] and reply["id"] == 2
            writer.close()
            await writer.wait_closed()

        run(with_server(go))

    def test_non_object_json_typed_error(self):
        async def go(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            for frame in (b"[1, 2, 3]\n", b'"ping"\n', b"42\n"):
                writer.write(frame)
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["ok"] is False
                assert reply["error_type"] == "protocol"
            writer.close()
            await writer.wait_closed()

        run(with_server(go))

    def test_unknown_op_typed_error(self):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port, retry=None) as c:
                with pytest.raises(ProtocolError, match="unknown op"):
                    await c.request({"op": "warp"})
                assert (await c.ping())["ok"]

        run(with_server(go))

    def test_mid_frame_disconnect_absorbed(self):
        async def go(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"op": "compile", "topolo')  # no newline
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            # Accept loop untouched; next client is served normally.
            async with AsyncCompileClient(host, port) as c:
                assert (await c.ping())["ok"]

        run(with_server(go))

    def test_accept_loop_survives_a_barrage(self):
        frames = [
            b"\n",
            b"not json\n",
            b"\x00\x01\x02\n",
            b'{"op": "compile"}\n',
            b'{"op": "compile", "topology": {"kind": "klein-bottle"}}\n',
            b'{"op": "compile", "topology": {"kind": "torus", "width": 4}, '
            b'"pairs": [[0]]}\n',
            b'{"deadline": -1, "topology": {"kind": "torus", "width": 4}, '
            b'"pairs": [[0, 1]]}\n',
        ]

        async def go(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            for frame in frames:
                writer.write(frame)
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["ok"] is False
                assert "error_type" in reply
            writer.close()
            await writer.wait_closed()
            async with AsyncCompileClient(host, port) as c:
                reply = await c.compile(TORUS4, pattern=TRANSPOSE4)
                assert reply["ok"]

        run(with_server(go))


class TestHealthAndReady:
    def test_health_reports_state(self):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port) as c:
                await c.compile(TORUS4, pattern=TRANSPOSE4)
                health = await c.health()
            assert health["ready"] is True
            assert health["queue_depth"] == 0
            assert health["inflight"] == 0
            assert health["max_pending"] == server.policy.max_pending
            assert health["shed"] == 0
            assert health["uptime_seconds"] > 0
            assert health["cache"]["entries"] == 1

        run(with_server(go))

    def test_ready_verb(self):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port) as c:
                assert await c.ready() is True

        run(with_server(go))

    def test_not_ready_when_saturated(self):
        # max_pending=0 means the admission gate is always full.
        policy = ServerPolicy(max_pending=0)

        async def go(server, host, port):
            async with AsyncCompileClient(host, port) as c:
                assert await c.ready() is False

        run(with_server(go, policy=policy))


class TestAdmissionControl:
    def test_saturated_server_sheds_with_retry_after(self):
        policy = ServerPolicy(max_pending=0, retry_after=0.123)

        async def go(server, host, port):
            async with AsyncCompileClient(host, port, retry=None) as c:
                with pytest.raises(Overloaded) as excinfo:
                    await c.compile(TORUS4, pattern=TRANSPOSE4)
            assert excinfo.value.retry_after == 0.123
            assert server.shed == 1

        run(with_server(go, policy=policy))

    def test_shed_requests_counted_in_health(self):
        policy = ServerPolicy(max_pending=0, retry_after=0.01)

        async def go(server, host, port):
            async with AsyncCompileClient(host, port, retry=None) as c:
                for _ in range(3):
                    with pytest.raises(Overloaded):
                        await c.compile(TORUS4, pattern=TRANSPOSE4)
                health = await c.health()
            assert health["shed"] == 3

        run(with_server(go, policy=policy))

    def test_client_retries_shed_request_until_give_up(self):
        policy = ServerPolicy(max_pending=0, retry_after=0.001)
        retry = RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.01)

        async def go(server, host, port):
            async with AsyncCompileClient(host, port, retry=retry) as c:
                with pytest.raises(Overloaded):
                    await c.compile(TORUS4, pattern=TRANSPOSE4)
                assert c.retries == 2  # 3 attempts = 2 retries
            assert server.shed == 3

        run(with_server(go, policy=policy))


class TestDeadlines:
    def test_hung_compile_times_out_and_pool_restarts(self, monkeypatch):
        def hang(*args, **kwargs):
            time.sleep(0.8)
            raise AssertionError("unreachable: the reply beat the hang")

        monkeypatch.setattr(compile_mod, "build_canonical_artifact", hang)
        policy = ServerPolicy(request_deadline=0.05)

        async def go(server, host, port):
            async with AsyncCompileClient(host, port, retry=None) as c:
                with pytest.raises(ServiceTimeout, match="deadline"):
                    await c.compile(TORUS4, pattern=TRANSPOSE4)
            assert server.deadline_cancels == 1
            assert server.worker_restarts == 1
            assert server._inflight == {}

        run(with_server(go, policy=policy))

    def test_server_recovers_after_deadline_cancel(self, monkeypatch):
        real = compile_mod.build_canonical_artifact
        hangs = [True]

        def flaky(*args, **kwargs):
            if hangs.pop(0) if hangs else False:
                time.sleep(0.8)
            return real(*args, **kwargs)

        monkeypatch.setattr(compile_mod, "build_canonical_artifact", flaky)
        policy = ServerPolicy(request_deadline=0.05)

        async def go(server, host, port):
            async with AsyncCompileClient(host, port, retry=None) as c:
                with pytest.raises(ServiceTimeout):
                    await c.compile(TORUS4, pattern=TRANSPOSE4)
            # Fresh pool, same request: compiles fine now.
            async with AsyncCompileClient(host, port, retry=None) as c:
                reply = await c.compile(TORUS4, pairs=[[0, 1]], deadline=30)
                assert reply["ok"]

        run(with_server(go, policy=policy))

    def test_per_request_deadline_tightens_policy(self, monkeypatch):
        def hang(*args, **kwargs):
            time.sleep(0.8)

        monkeypatch.setattr(compile_mod, "build_canonical_artifact", hang)

        async def go(server, host, port):  # policy default is 60s
            async with AsyncCompileClient(host, port, retry=None) as c:
                with pytest.raises(ServiceTimeout):
                    await c.compile(TORUS4, pattern=TRANSPOSE4, deadline=0.05)

        run(with_server(go))

    def test_bad_deadline_rejected(self):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port, retry=None) as c:
                with pytest.raises(ProtocolError, match="bad deadline"):
                    await c.compile(TORUS4, pattern=TRANSPOSE4, deadline=-1)

        run(with_server(go))


class TestShutdownRace:
    def test_listener_closed_before_ack(self):
        async def go():
            server = CompileServer()
            await server.start()
            host, port = server.address
            serve = asyncio.ensure_future(server.serve_forever())
            async with AsyncCompileClient(host, port) as c:
                await c.shutdown()
                # The ack is the fence: no new connection can have been
                # accepted once the client has seen it.
                with pytest.raises(OSError):
                    await asyncio.open_connection(host, port)
            await asyncio.wait_for(serve, timeout=10)

        run(go())

    def test_drain_failure_surfaces_in_serve_forever(self, monkeypatch):
        async def go():
            server = CompileServer()
            await server.start()
            host, port = server.address
            serve = asyncio.ensure_future(server.serve_forever())

            def boom(*args, **kwargs):
                raise RuntimeError("drain exploded")

            monkeypatch.setattr(server._executor, "shutdown", boom)
            async with AsyncCompileClient(host, port) as c:
                await c.shutdown()
            # The drain task's failure is kept (satellite: no swallowed
            # shutdown exceptions) and re-raised at the await point.
            with pytest.raises(RuntimeError, match="drain exploded"):
                await asyncio.wait_for(serve, timeout=10)
            monkeypatch.undo()
            server._shutdown_task = None
            await server.shutdown()  # real cleanup

        run(go())


class _ScriptedServer:
    """A fake compile server answering from a list of behaviours.

    Each behaviour handles one request *line*: ``"close"`` cuts the
    connection without replying, a dict is sent as the reply (with the
    request's ``id``/``idem`` merged in unless overridden), and a
    callable gets the parsed request and returns the reply dict.
    """

    def __init__(self, behaviors):
        self.behaviors = list(behaviors)
        self._server = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(
            self._handle, host="127.0.0.1", port=0
        )
        return self

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()

    @property
    def address(self):
        return self._server.sockets[0].getsockname()[:2]

    async def _handle(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                req = json.loads(line)
                behavior = self.behaviors.pop(0)
                if behavior == "close":
                    return
                if callable(behavior):
                    reply = behavior(req)
                else:
                    reply = {"id": req.get("id"), "ok": True}
                    if "idem" in req:
                        reply["idem"] = request_digest(req)
                    reply.update(behavior)
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()


class TestClientResilience:
    def test_retry_after_connection_cut(self):
        async def go():
            retry = RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.01)
            async with _ScriptedServer(["close", {"op": "ping"}]) as fake:
                client = AsyncCompileClient(*fake.address, retry=retry)
                reply = await client.request({"op": "ping"})
                assert reply["ok"]
                assert client.retries == 1
                await client.close()

        run(go())

    def test_overloaded_reply_retried(self):
        async def go():
            shed = {"ok": False, "error": "overloaded",
                    "error_type": "overloaded", "retry_after": 0.001}
            retry = RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.01)
            async with _ScriptedServer([shed, shed, {"op": "ping"}]) as fake:
                client = AsyncCompileClient(*fake.address, retry=retry)
                reply = await client.request({"op": "ping"})
                assert reply["ok"]
                assert client.retries == 2
                await client.close()

        run(go())

    def test_shutdown_is_never_retried(self):
        async def go():
            retry = RetryPolicy(attempts=5, base_delay=0.001)
            async with _ScriptedServer(["close"]) as fake:
                client = AsyncCompileClient(*fake.address, retry=retry)
                with pytest.raises(TransportError):
                    await client.request({"op": "shutdown"})
                assert client.retries == 0
                await client.close()

        run(go())

    def test_idem_echo_mismatch_detected(self):
        def lie(req):
            return {"id": req.get("id"), "ok": True,
                    "idem": "0" * 16}  # wrong digest: garbled request

        async def go():
            async with _ScriptedServer([lie]) as fake:
                client = AsyncCompileClient(*fake.address, retry=None)
                # retry=None skips the idem tag, so tag by hand.
                req = {"op": "ping"}
                req["idem"] = request_digest(req)
                with pytest.raises(TransportError, match="integrity mismatch"):
                    await client.request(req)
                await client.close()

        run(go())

    def test_payload_digest_mismatch_detected(self):
        tampered = {
            "op": "compile",
            "schedule": {"degree": 1, "slots": []},
            "payload_sha256": "0" * 64,
        }

        async def go():
            async with _ScriptedServer([tampered]) as fake:
                client = AsyncCompileClient(*fake.address, retry=None)
                with pytest.raises(TransportError, match="integrity"):
                    await client.request({"op": "compile"})
                await client.close()

        run(go())

    def test_breaker_fast_fails_after_threshold(self):
        async def go():
            breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
            behaviors = ["close"] * 2
            async with _ScriptedServer(behaviors) as fake:
                client = AsyncCompileClient(
                    *fake.address, retry=None, breaker=breaker
                )
                for _ in range(2):
                    with pytest.raises(TransportError):
                        await client.request({"op": "ping"})
                    await client.close()
                # Third request never touches the socket.
                with pytest.raises(CircuitOpen):
                    await client.request({"op": "ping"})
            assert breaker.trips == 1
            assert breaker.rejected == 1

        run(go())

    def test_breaker_half_open_probe_recovers(self):
        async def go():
            clock = [0.0]
            breaker = CircuitBreaker(
                failure_threshold=1, reset_timeout=5.0,
                clock=lambda: clock[0],
            )
            async with _ScriptedServer(["close", {"op": "ping"}]) as fake:
                client = AsyncCompileClient(
                    *fake.address, retry=None, breaker=breaker
                )
                with pytest.raises(TransportError):
                    await client.request({"op": "ping"})
                await client.close()
                clock[0] = 5.0  # reset timer expires: probe admitted
                reply = await client.request({"op": "ping"})
                assert reply["ok"]
                assert breaker.state == "closed"
                await client.close()

        run(go())

    def test_deterministic_failures_do_not_trip_breaker(self):
        bad = {"ok": False, "error": "unknown pattern",
               "error_type": "server_error"}

        async def go():
            breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
            async with _ScriptedServer([bad, {"op": "ping"}]) as fake:
                client = AsyncCompileClient(
                    *fake.address, retry=None, breaker=breaker
                )
                with pytest.raises(Exception):
                    await client.request({"op": "ping"})
                # An ok:false answer proves the server is *up*.
                assert breaker.state == "closed"
                assert (await client.request({"op": "ping"}))["ok"]
                await client.close()

        run(go())


class TestBlockingClientResilience:
    def test_blocking_client_full_loop_against_real_server(self, tmp_path):
        sock = str(tmp_path / "compile.sock")

        async def serve():
            server = CompileServer(socket_path=sock)
            await server.start()
            serve_task = asyncio.ensure_future(server.serve_forever())

            def blocking_session():
                retry = RetryPolicy(attempts=3, base_delay=0.001)
                with CompileClient(
                    socket_path=sock, retry=retry,
                    breaker=CircuitBreaker(failure_threshold=5),
                ) as c:
                    assert c.ping()["ok"]
                    assert c.ready() is True
                    health = c.health()
                    assert health["ready"] is True
                    reply = c.compile(TORUS4, pattern=TRANSPOSE4)
                    assert reply["ok"] and reply["cache"] == "miss"
                    assert c.shutdown()["ok"]

            await asyncio.get_running_loop().run_in_executor(
                None, blocking_session
            )
            await asyncio.wait_for(serve_task, timeout=10)

        run(serve())

    def test_blocking_client_connect_refused_is_typed(self, tmp_path):
        with pytest.raises(TransportError):
            CompileClient(socket_path=str(tmp_path / "nope.sock"),
                          retry=None).connect()
