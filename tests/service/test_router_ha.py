"""Tests for router high availability: the ``(epoch, version)`` fencing
token, the node-arbitrated leadership lease, standby promotion, client
endpoint-list failover, and graceful drain with proactive handoff."""

import asyncio
import socket

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service.amend import amend_epoch_digest, parse_rows
from repro.service.client import AsyncCompileClient, CompileClient
from repro.service.errors import (
    EX_TEMPFAIL,
    ProtocolError,
    StaleEpoch,
    TransportError,
    error_fields,
    reply_error,
)
from repro.service.farm import Farm, ShardMap

TORUS4 = {"kind": "torus", "width": 4}
RING16 = {"pattern": "ring", "nodes": 16}


def run(coro):
    return asyncio.run(coro)


async def with_farm(fn, **farm_kwargs):
    farm_kwargs.setdefault("workers", 0)
    farm = Farm(**farm_kwargs)
    await farm.start()
    try:
        return await fn(farm)
    finally:
        await farm.shutdown()


async def with_ha_farm(fn, **farm_kwargs):
    """A two-router farm with a short lease, so promotion is fast."""
    farm_kwargs.setdefault("routers", 2)
    farm_kwargs.setdefault("lease_ttl", 0.5)
    farm_kwargs.setdefault("lease_interval", 0.1)
    return await with_farm(fn, **farm_kwargs)


async def settle_pushes(farm):
    for node in list(farm.nodes.values()):
        if node._repl_tasks:
            await asyncio.gather(*node._repl_tasks, return_exceptions=True)


def dead_endpoint():
    """A loopback (host, port) that refuses connections."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return ("127.0.0.1", port)


def two_node_map(version=1, epoch=1):
    return ShardMap(
        {"node0": {"host": "127.0.0.1", "port": 1},
         "node1": {"host": "127.0.0.1", "port": 2}},
        replication=2, version=version, epoch=epoch,
    )


# ----------------------------------------------------------------------
# the fencing token
# ----------------------------------------------------------------------

class TestFencingToken:
    def test_epoch_dominates_version(self):
        # The deposed leader's map: epoch 1 but a huge version.  The
        # promoted standby's map: epoch 2, tiny version.  Epoch wins.
        deposed = two_node_map(version=99, epoch=1)
        promoted = two_node_map(version=2, epoch=2)
        assert promoted.dominates(deposed)
        assert not deposed.dominates(promoted)
        assert promoted.token == (2, 2)

    def test_same_epoch_falls_back_to_version(self):
        older = two_node_map(version=3)
        newer = older.without("node1")
        assert newer.dominates(older)
        assert not older.dominates(older)  # equal tokens: no winner

    def test_with_epoch_bumps_both_fields(self):
        base = two_node_map(version=5, epoch=1)
        promoted = base.with_epoch(2)
        assert promoted.token == (2, 6)
        assert promoted.nodes == base.nodes

    def test_with_epoch_refuses_non_increasing(self):
        base = two_node_map(epoch=3)
        with pytest.raises(ValueError):
            base.with_epoch(3)
        with pytest.raises(ValueError):
            base.with_epoch(2)

    def test_membership_changes_keep_the_epoch(self):
        base = two_node_map(epoch=4)
        assert base.without("node1").epoch == 4
        assert base.with_node(
            "node2", {"host": "127.0.0.1", "port": 3}
        ).epoch == 4

    def test_dict_round_trip_and_pre_fencing_default(self):
        base = two_node_map(version=7, epoch=3)
        again = ShardMap.from_dict(base.as_dict())
        assert again.token == (3, 7)
        # A pre-fencing map document carries no epoch field: it belongs
        # to the first leader incarnation by definition.
        legacy = base.as_dict()
        del legacy["epoch"]
        assert ShardMap.from_dict(legacy).epoch == 1


class TestStaleEpochWire:
    def test_error_fields_round_trip(self):
        exc = StaleEpoch(current_epoch=3, current_version=7)
        fields = error_fields(exc)
        assert fields["error_type"] == "stale_epoch"
        back = reply_error({"ok": False, **fields})
        assert isinstance(back, StaleEpoch)
        assert back.current_epoch == 3
        assert back.current_version == 7
        assert back.exit_code == EX_TEMPFAIL
        assert not back.retryable


# ----------------------------------------------------------------------
# node-side fencing: reshard compares (epoch, version), not version
# ----------------------------------------------------------------------

class TestNodeReshardFencing:
    def test_higher_version_lower_epoch_is_rejected(self):
        async def scenario(farm):
            node = next(iter(farm.nodes.values()))
            promoted = node.shard_map.with_epoch(2)
            host, port = node.address
            async with AsyncCompileClient(host, port, retry=None) as client:
                reply = await client.request(
                    {"op": "reshard", "shard_map": promoted.as_dict()}
                )
                assert reply["epoch"] == 2
                # The deposed leader's late push: same membership, a
                # *far* higher version, but the old epoch.  A bare
                # version compare would adopt it; the token must not.
                stale = ShardMap.from_dict({
                    **node.shard_map.as_dict(),
                    "version": promoted.version + 50,
                    "epoch": 1,
                })
                with pytest.raises(StaleEpoch) as exc:
                    await client.request(
                        {"op": "reshard", "shard_map": stale.as_dict()}
                    )
            assert exc.value.current_epoch == 2
            assert node.shard_map.epoch == 2
            assert node.stale_epoch_rejections == 1

        run(with_farm(scenario, nodes=2))

    def test_router_reshard_verb_is_fenced_too(self):
        async def scenario(farm):
            router = farm.router
            promoted = router.shard_map.with_epoch(3)
            adopted = router._reshard_verb(
                {"op": "reshard", "shard_map": promoted.as_dict()}
            )
            assert adopted["adopted"] is True
            stale = ShardMap.from_dict({
                **promoted.as_dict(), "version": promoted.version + 50,
                "epoch": 1,
            })
            with pytest.raises(StaleEpoch):
                router._reshard_verb(
                    {"op": "reshard", "shard_map": stale.as_dict()}
                )
            assert router.shard_map.epoch == 3
            assert router.stale_epoch_rejections == 1

        run(with_farm(scenario, nodes=2))


# ----------------------------------------------------------------------
# the lease verb: nodes are the quorum
# ----------------------------------------------------------------------

class TestLeaseVerb:
    def test_grant_renew_refuse_and_floor(self):
        async def scenario(farm):
            node = next(iter(farm.nodes.values()))

            def lease(router, epoch, ttl=5.0):
                return node._lease_verb(
                    {"op": "lease", "router": router,
                     "epoch": epoch, "ttl": ttl}
                )

            # Fresh claim, then renewal by the same holder.
            assert lease("router0", 1)["granted"] is True
            assert lease("router0", 1)["granted"] is True
            # A live lease is never preempted -- not even by a higher
            # epoch from a different router.
            refused = lease("router1", 2)
            assert refused["granted"] is False
            assert refused["holder"] == "router0"
            # The holder itself may re-claim under a higher epoch.
            assert lease("router0", 3)["granted"] is True
            assert node.lease_grants == 3
            assert node.lease_refusals == 1
            assert node._lease_epoch_floor == 3

        run(with_farm(scenario, nodes=1))

    def test_expired_lease_yields_but_only_above_the_floor(self):
        async def scenario(farm):
            node = next(iter(farm.nodes.values()))
            granted = node._lease_verb(
                {"op": "lease", "router": "router0",
                 "epoch": 2, "ttl": 0.05}
            )
            assert granted["granted"] is True
            await asyncio.sleep(0.08)  # let the lease lapse
            # The deposed leader's old epoch is below the floor: even
            # against a lapsed lease it can never win a grant back.
            assert node._lease_verb(
                {"op": "lease", "router": "router9",
                 "epoch": 2, "ttl": 5.0}
            )["granted"] is False
            promoted = node._lease_verb(
                {"op": "lease", "router": "router1",
                 "epoch": 3, "ttl": 5.0}
            )
            assert promoted["granted"] is True
            assert promoted["holder"] == "router1"

        run(with_farm(scenario, nodes=1))

    def test_malformed_lease_requests_are_typed(self):
        async def scenario(farm):
            node = next(iter(farm.nodes.values()))
            for bad in (
                {"op": "lease"},
                {"op": "lease", "router": "r", "epoch": 0, "ttl": 1.0},
                {"op": "lease", "router": "r", "epoch": 1, "ttl": 0},
            ):
                with pytest.raises(ProtocolError):
                    node._lease_verb(bad)

        run(with_farm(scenario, nodes=1))


# ----------------------------------------------------------------------
# promotion: leader dies, standby takes over under a new epoch
# ----------------------------------------------------------------------

class TestPromotion:
    def test_standby_promotes_and_fences_the_deposed_leader(self):
        async def scenario(farm):
            leader = farm.leader
            standby = next(
                r for r in farm.routers.values() if r is not leader
            )
            assert leader.role == "leader" and standby.role == "standby"
            old_epoch = leader.shard_map.epoch
            deposed_map = leader.shard_map

            await farm.kill_router()
            deadline = asyncio.get_event_loop().time() + 10.0
            while (not standby.is_leader
                   and asyncio.get_event_loop().time() < deadline):
                await asyncio.sleep(0.02)
            assert standby.is_leader
            assert standby.promotions == 1
            assert standby.shard_map.epoch == old_epoch + 1

            # Every node adopted the promoted map...
            for node in farm.nodes.values():
                assert node.shard_map.epoch == old_epoch + 1
            # ...so the deposed leader's late push (stale epoch, however
            # high the version) is refused farm-wide with the typed error.
            dead = next(iter(farm.dead_routers.values()))
            dead.shard_map = ShardMap.from_dict({
                **deposed_map.as_dict(),
                "version": standby.shard_map.version + 50,
            })
            with pytest.raises(StaleEpoch):
                await dead.push_map_peer(*standby.address)
            node = next(iter(farm.nodes.values()))
            host, port = node.address
            async with AsyncCompileClient(host, port, retry=None) as direct:
                with pytest.raises(StaleEpoch):
                    await direct.request({
                        "op": "reshard",
                        "shard_map": dead.shard_map.as_dict(),
                    })

            # The promoted router still serves traffic.
            client = farm.client()
            async with client:
                reply = await client.compile(TORUS4, pattern=RING16)
            assert reply["ok"] is True

        run(with_ha_farm(scenario, nodes=3))

    def test_stats_report_role_lease_and_token(self):
        async def scenario(farm):
            await asyncio.sleep(0.25)  # a few lease rounds
            async with farm.client() as client:
                stats = await client.stats()
            router = stats["router"]
            assert router["role"] == "leader"
            assert router["epoch"] == 1
            assert router["map_epoch"] == 1
            assert router["lease_rounds"] >= 1
            assert router["lease_age_seconds"] is not None
            assert router["lease_age_seconds"] < 10.0
            async with farm.client() as client:
                health = await client.health()
            assert health["router"]["role"] == "leader"
            # Nodes expose the granted lease and the map token too.
            farm_block = stats["nodes"]["node0"]["farm"]
            assert farm_block["map_epoch"] == 1
            assert farm_block["lease_holder"] == "router0"
            assert farm_block["draining"] is False

        run(with_ha_farm(scenario, nodes=2))


# ----------------------------------------------------------------------
# client endpoint lists: transparent router failover
# ----------------------------------------------------------------------

class TestClientEndpointFailover:
    def test_async_connect_rotates_past_a_dead_router(self):
        async def scenario(farm):
            endpoints = [dead_endpoint()] + farm.router_addresses
            client = AsyncCompileClient(endpoints=endpoints)
            async with client:
                reply = await client.compile(TORUS4, pattern=RING16)
            assert reply["ok"] is True
            assert client.failovers >= 1

        run(with_farm(scenario, nodes=2))

    def test_sync_connect_rotates_past_a_dead_router(self):
        async def scenario(farm):
            return [dead_endpoint()] + farm.router_addresses, farm

        # The sync client cannot run inside the farm's event loop; run
        # the farm in a thread-backed loop instead.
        async def scenario2(farm):
            endpoints = [dead_endpoint()] + farm.router_addresses

            def blocking():
                with CompileClient(endpoints=endpoints) as client:
                    reply = client.compile(TORUS4, pattern=RING16)
                    return reply, client.failovers

            reply, failovers = await asyncio.to_thread(blocking)
            assert reply["ok"] is True
            assert failovers >= 1

        run(with_farm(scenario2, nodes=2))

    def test_request_fails_over_mid_session(self):
        async def scenario(farm):
            client = farm.client()
            async with client:
                assert (await client.compile(TORUS4, pattern=RING16))["ok"]
                await farm.kill_router()  # the connected router dies
                # Idempotent verb: retried transparently on the survivor.
                reply = await client.stats()
                assert reply["router"]["name"] in farm.routers

        run(with_ha_farm(scenario, nodes=2))

    def test_exhausted_endpoint_list_raises_transport(self):
        async def scenario():
            client = AsyncCompileClient(
                endpoints=[dead_endpoint(), dead_endpoint()]
            )
            with pytest.raises(TransportError):
                await client.connect()
            assert client.failovers >= 1

        run(scenario())


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------

async def open_stream(client, pairs=None):
    reply = await client.amend(
        TORUS4, pairs=pairs or [[i, (i + 3) % 16] for i in range(6)]
    )
    return str(reply["root"]), str(reply["digest"]), int(reply["epoch"])


class TestGracefulDrain:
    def test_drain_hands_off_streams_and_replicas(self):
        async def scenario(farm):
            client = farm.client()
            async with client:
                # A live amend stream on its primary...
                root, chain, epoch = await open_stream(client)
                for e in range(3):
                    add = [[e % 16, (e + 7) % 16, 1, 2]]
                    reply = await client.amend(root=root, epoch=epoch, add=add)
                    chain = amend_epoch_digest(
                        chain, parse_rows(add, what="add"), []
                    )
                    assert reply["digest"] == chain
                    epoch = int(reply["epoch"])
                await settle_pushes(farm)
                target = farm.router.shard_map.owners(root)[0]
                target_node = farm.nodes[target]
                assert root in target_node.amends.live_roots()
                held = set(target_node.cache.digests())
                takeovers_before = sum(
                    n.amend_takeovers for n in farm.nodes.values()
                )

                drained = await farm.drain_node(target)
                assert target not in farm.router.shard_map.nodes
                assert target in farm.drained
                assert drained.drain_handoffs >= 1
                assert farm.router.drains == 1

                # The first post-drain amend lands on the *already
                # adopted* stream: the chain continues, no takeover.
                add = [[3, 10, 1, 2]]
                reply = await client.amend(root=root, epoch=epoch, add=add)
                chain = amend_epoch_digest(
                    chain, parse_rows(add, what="add"), []
                )
                assert reply["digest"] == chain
                takeovers_after = sum(
                    n.amend_takeovers for n in farm.nodes.values()
                )
                assert takeovers_after == takeovers_before
                assert sum(
                    n.drain_adoptions for n in farm.nodes.values()
                ) >= 1

                # Nothing the drained node held is under-replicated
                # under the successor map.
                smap = farm.router.shard_map
                for digest in held:
                    for owner in smap.owners(digest):
                        assert digest in farm.nodes[owner].cache.digests()

        run(with_farm(scenario, nodes=3, replication=2))

    def test_drain_recloses_uniquely_owned_artifacts(self):
        async def scenario(farm):
            # Drop every replica push, so each artifact exists only on
            # the node that compiled it -- exactly what a drain must
            # proactively re-replicate before the node leaves.
            for node in farm.nodes.values():
                node.drop_replica_push_rate = 1.0
            client = farm.client()
            async with client:
                digests = []
                for width in (4, 8):
                    reply = await client.compile(
                        {"kind": "torus", "width": width}, pattern=RING16
                        if width == 4 else {"pattern": "ring", "nodes": 64},
                    )
                    digests.append(str(reply["digest"]))
            for node in farm.nodes.values():
                node.drop_replica_push_rate = 0.0
            await settle_pushes(farm)
            target = next(
                name for name, node in farm.nodes.items()
                if set(digests) & node.cache.digests()
            )
            unique = [
                d for d in digests
                if d in farm.nodes[target].cache.digests()
                and not any(
                    d in other.cache.digests()
                    for name, other in farm.nodes.items() if name != target
                )
            ]
            assert unique  # dropped pushes => unique by construction
            drained = await farm.drain_node(target)
            assert drained.drain_repushes >= 1
            smap = farm.router.shard_map
            for digest in unique:
                for owner in smap.owners(digest):
                    assert digest in farm.nodes[owner].cache.digests()

        run(with_farm(scenario, nodes=3, replication=2))

    def test_drain_repush_respects_bounded_retry(self):
        async def scenario(farm):
            for node in farm.nodes.values():
                node.drop_replica_push_rate = 1.0
            client = farm.client()
            async with client:
                reply = await client.compile(TORUS4, pattern=RING16)
                digest = str(reply["digest"])
            for node in farm.nodes.values():
                node.drop_replica_push_rate = 0.0
            target = next(
                name for name, node in farm.nodes.items()
                if digest in node.cache.digests()
            )
            # Every push out of the draining node fails (one-way
            # partitions to every peer): the bounded retry budget must
            # give up rather than wedge the drain forever.
            for other in farm.nodes:
                if other != target:
                    farm.partition(target, other)
            drained = await farm.drain_node(target)
            assert drained.drain_repush_retries > 0
            # The drain completed regardless; the retry count shows up
            # in the router's aggregated replication stats.
            stats = farm.router  # drain_node accumulated the counter
            assert stats.drain_repush_retries > 0

        run(with_farm(scenario, nodes=3, replication=2))

    def test_draining_node_redirects_parked_amends(self):
        async def scenario(farm):
            client = farm.client()
            async with client:
                root, chain, epoch = await open_stream(client)
                await settle_pushes(farm)
                target = farm.router.shard_map.owners(root)[0]

                drain_task = asyncio.create_task(farm.drain_node(target))
                await asyncio.sleep(0.01)
                # An amend racing the drain: it parks on the draining
                # primary, then follows the typed redirect to the
                # already-adopted stream on the successor.
                add = [[1, 6, 1, 2]]
                reply = await client.amend(root=root, epoch=epoch, add=add)
                await drain_task
                chain = amend_epoch_digest(
                    chain, parse_rows(add, what="add"), []
                )
                assert reply["digest"] == chain

        run(with_farm(scenario, nodes=3, replication=2))


# ----------------------------------------------------------------------
# property: amends + drain interleave without forking or stranding
# ----------------------------------------------------------------------

class TestDrainChurnProperty:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        before=st.integers(min_value=0, max_value=3),
        concurrent=st.booleans(),
        after=st.integers(min_value=1, max_value=3),
        row_seed=st.integers(min_value=0, max_value=7),
    )
    def test_any_interleaving_keeps_the_stream_available(
        self, before, concurrent, after, row_seed
    ):
        """No amend/drain interleaving forks the epoch chain or strands
        the stream: the first post-drain amend lands on the adopted
        stream directly (``amend_takeovers`` unchanged throughout)."""

        async def scenario(farm):
            client = farm.client()
            async with client:
                root, chain, epoch = await open_stream(client)

                async def step(e):
                    nonlocal chain, epoch
                    add = [[(e + row_seed) % 16, (e + row_seed + 5) % 16,
                            1, 2]]
                    reply = await client.amend(
                        root=root, epoch=epoch, add=add
                    )
                    chain = amend_epoch_digest(
                        chain, parse_rows(add, what="add"), []
                    )
                    assert reply["digest"] == chain  # never forks
                    epoch = int(reply["epoch"])

                for e in range(before):
                    await step(e)
                await settle_pushes(farm)
                target = farm.router.shard_map.owners(root)[0]
                takeovers_before = sum(
                    n.amend_takeovers for n in farm.nodes.values()
                )
                drain_task = asyncio.create_task(farm.drain_node(target))
                if concurrent:
                    await asyncio.sleep(0.005)
                    await step(100)  # races the drain window
                await drain_task
                for e in range(after):
                    await step(200 + e)  # lands on the adopted stream
                assert sum(
                    n.amend_takeovers for n in farm.nodes.values()
                ) == takeovers_before

        run(with_farm(scenario, nodes=3, replication=2))
