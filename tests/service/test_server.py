"""Tests for the asyncio compile server and its clients."""

import asyncio
import json

import pytest

from repro.service import compile as compile_mod
from repro.service.cache import ArtifactCache
from repro.service.client import AsyncCompileClient, ServerError
from repro.service.server import CompileServer, _parse_pattern

TORUS4 = {"kind": "torus", "width": 4}
TRANSPOSE4 = {"pattern": "transpose", "width": 4}


def run(coro):
    return asyncio.run(coro)


async def with_server(fn, **server_kwargs):
    """Start a TCP server on an ephemeral port, run ``fn``, drain."""
    server = CompileServer(**server_kwargs)
    await server.start()
    host, port = server.address
    try:
        return await fn(server, host, port)
    finally:
        await server.shutdown()


class TestProtocol:
    def test_ping_and_stats(self):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port) as c:
                assert (await c.ping())["ok"]
                stats = await c.stats()
                assert stats["cache"]["hits"] == 0
                assert stats["workers"] == 0

        run(with_server(go))

    def test_compile_miss_then_hit(self):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port) as c:
                first = await c.compile(TORUS4, pattern=TRANSPOSE4)
                second = await c.compile(TORUS4, pattern=TRANSPOSE4)
            assert first["cache"] == "miss" and second["cache"] == "hit"
            assert second["schedule"] == first["schedule"]
            assert first["degree"] >= 1
            assert len(first["digest"]) == 64

        run(with_server(go))

    def test_pairs_request_and_registers(self):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port) as c:
                reply = await c.compile(
                    TORUS4, pairs=[[0, 1], [2, 3, 4], [5, 6, 1, 7]],
                    registers=True,
                )
            assert reply["ok"] and "registers" in reply
            entries = [e for slot in reply["schedule"]["slots"] for e in slot]
            assert {(e["src"], e["dst"]) for e in entries} == {(0, 1), (2, 3), (5, 6)}
            assert {e["tag"] for e in entries} == {0, 7}

        run(with_server(go))

    def test_errors_are_replies_not_disconnects(self):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port) as c:
                for bad in (
                    {"op": "warp"},
                    {"op": "compile", "topology": {"kind": "moebius"}, "pairs": [[0, 1]]},
                    {"op": "compile", "topology": TORUS4},
                    {"op": "compile", "topology": TORUS4, "pattern": {"pattern": "nope"}},
                ):
                    with pytest.raises(ServerError):
                        await c.request(bad)
                # The connection survived all four errors.
                assert (await c.ping())["ok"]

        run(with_server(go))

    def test_malformed_json_line(self):
        async def go(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["ok"] is False
            writer.close()
            await writer.wait_closed()

        run(with_server(go))

    def test_unix_socket_endpoint(self, tmp_path):
        sock = str(tmp_path / "compile.sock")

        async def go():
            server = CompileServer(socket_path=sock)
            await server.start()
            assert server.address == sock
            try:
                async with AsyncCompileClient(socket_path=sock) as c:
                    reply = await c.compile(TORUS4, pattern=TRANSPOSE4)
                    assert reply["cache"] == "miss"
            finally:
                await server.shutdown()

        run(go())


class TestDedupAndConcurrency:
    def test_concurrent_identical_requests_compile_once(self, monkeypatch):
        calls = []
        real = compile_mod.build_canonical_artifact

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        # workers=0 runs compiles on an in-process thread, so the
        # monkeypatch is visible to the worker.
        monkeypatch.setattr(compile_mod, "build_canonical_artifact", counting)

        async def go(server, host, port):
            async def one():
                async with AsyncCompileClient(host, port) as c:
                    return await c.compile(TORUS4, pattern=TRANSPOSE4)

            replies = await asyncio.gather(*[one() for _ in range(8)])
            outcomes = sorted(r["cache"] for r in replies)
            assert outcomes.count("miss") == 1
            assert all(o in ("miss", "inflight", "hit") for o in outcomes)
            assert len({json.dumps(r["schedule"], sort_keys=True) for r in replies}) == 1
            stats = await (await AsyncCompileClient(host, port).connect()).stats()
            assert stats["inflight"] == 0
            return replies

        run(with_server(go))
        assert len(calls) == 1  # exactly one scheduler run for 8 clients

    def test_distinct_requests_not_coalesced(self):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port) as c:
                a = await c.compile(TORUS4, pairs=[[0, 1]])
                b = await c.compile(TORUS4, pairs=[[0, 2]])
            assert a["digest"] != b["digest"]
            assert a["cache"] == b["cache"] == "miss"

        run(with_server(go))

    def test_failed_leader_reported_to_all(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("scheduler exploded")

        monkeypatch.setattr(compile_mod, "build_canonical_artifact", boom)

        async def go(server, host, port):
            async def one():
                async with AsyncCompileClient(host, port) as c:
                    try:
                        await c.compile(TORUS4, pattern=TRANSPOSE4)
                        return None
                    except ServerError as exc:
                        return str(exc)

            errors = await asyncio.gather(*[one() for _ in range(4)])
            assert all(e is not None for e in errors)
            assert server._inflight == {}

        run(with_server(go))


class TestLifecycle:
    def test_shutdown_verb_drains(self, tmp_path):
        async def go():
            server = CompileServer(cache=ArtifactCache(tmp_path))
            await server.start()
            host, port = server.address
            serve = asyncio.ensure_future(server.serve_forever())
            async with AsyncCompileClient(host, port) as c:
                await c.compile(TORUS4, pattern=TRANSPOSE4)
                reply = await c.shutdown()
                assert reply["ok"]
            await asyncio.wait_for(serve, timeout=10)
            # New connections are refused after drain.
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)

        run(go())

    def test_cache_shared_across_restarts(self, tmp_path):
        async def round_trip():
            server = CompileServer(cache=str(tmp_path))
            await server.start()
            host, port = server.address
            try:
                async with AsyncCompileClient(host, port) as c:
                    return (await c.compile(TORUS4, pattern=TRANSPOSE4))["cache"]
            finally:
                await server.shutdown()

        assert run(round_trip()) == "miss"
        assert run(round_trip()) == "hit"  # served from the disk tier


class TestParsePattern:
    def test_bad_pair_row_rejected(self):
        with pytest.raises(ValueError, match="bad pair row"):
            _parse_pattern({"pairs": [[1]]})

    def test_needs_pattern_or_pairs(self):
        with pytest.raises(ValueError, match="needs 'pattern' or 'pairs'"):
            _parse_pattern({})
