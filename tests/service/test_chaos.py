"""Tests for the chaos harness: proxy faults, crash staging, campaign."""

import asyncio
import json
import signal

from repro.service.cache import ArtifactCache
from repro.service.chaos import (
    ChaosConfig,
    ChaosProxy,
    kill_mid_write,
    run_chaos_campaign,
)
from repro.service.client import AsyncCompileClient
from repro.service.errors import ServiceError
from repro.service.policy import RetryPolicy
from repro.service.server import CompileServer

TORUS4 = {"kind": "torus", "width": 4}
TRANSPOSE4 = {"pattern": "transpose", "width": 4}


def run(coro):
    return asyncio.run(coro)


async def with_proxy(fn, config):
    server = CompileServer()
    await server.start()
    proxy = ChaosProxy(server.address, config)
    await proxy.start()
    try:
        return await fn(server, proxy)
    finally:
        await proxy.stop()
        await server.shutdown()


class TestChaosConfig:
    def test_active_flag(self):
        assert not ChaosConfig().active
        assert ChaosConfig(drop_rate=0.1).active
        assert ChaosConfig(garble_rate=0.01).active
        assert not ChaosConfig(delay_seconds=9.0).active  # duration != rate


class TestChaosProxy:
    def test_faultless_proxy_is_transparent(self):
        async def go(server, proxy):
            async with AsyncCompileClient(*proxy.address, retry=None) as c:
                via_proxy = await c.compile(TORUS4, pattern=TRANSPOSE4)
            async with AsyncCompileClient(*server.address, retry=None) as c:
                direct = await c.compile(TORUS4, pattern=TRANSPOSE4)
            assert via_proxy["schedule"] == direct["schedule"]
            assert proxy.stats.frames == 2  # one request + one reply
            assert proxy.stats.dropped == 0

        run(with_proxy(go, ChaosConfig()))

    def test_certain_drop_is_a_typed_failure(self):
        async def go(server, proxy):
            client = AsyncCompileClient(
                *proxy.address, timeout=1.0,
                retry=RetryPolicy(attempts=2, base_delay=0.001, max_delay=0.01),
            )
            try:
                await client.request({"op": "ping"})
            except ServiceError:
                pass
            else:  # pragma: no cover - invariant violation
                raise AssertionError("every frame dropped, yet a reply landed")
            finally:
                await client.close()
            assert proxy.stats.dropped >= 1
            # The *server* behind the proxy is untouched.
            async with AsyncCompileClient(*server.address, retry=None) as c:
                assert (await c.ping())["ok"]

        run(with_proxy(go, ChaosConfig(drop_rate=1.0)))

    def test_garbled_reply_caught_by_integrity_check(self):
        # Garble every frame: either the JSON breaks (protocol error on
        # a non-retrying client) or it parses and the idem/payload hash
        # catches the lie.  Nothing comes back *silently wrong*.
        async def go(server, proxy):
            client = AsyncCompileClient(*proxy.address, retry=None)
            req = {"op": "compile", "topology": TORUS4, "pattern": TRANSPOSE4}
            from repro.service.policy import request_digest
            req["idem"] = request_digest(req)
            try:
                reply = await client.request(dict(req))
            except ServiceError:
                pass
            else:  # parsed and verified: must be the true artifact
                assert reply["idem"] == req["idem"]
            finally:
                await client.close()
            assert proxy.stats.garbled >= 1

        run(with_proxy(go, ChaosConfig(garble_rate=1.0)))

    def test_same_seed_same_faults(self):
        async def one(seed):
            config = ChaosConfig(drop_rate=0.3, garble_rate=0.2, seed=seed)

            async def go(server, proxy):
                for _ in range(10):
                    client = AsyncCompileClient(
                        *proxy.address, timeout=1.0, retry=None
                    )
                    try:
                        await client.request({"op": "ping"})
                    except ServiceError:
                        pass
                    finally:
                        await client.close()
                return proxy.stats.as_dict()

            return await with_proxy(go, config)

        first = run(one(seed=7))
        second = run(one(seed=7))
        assert first == second


class TestKillMidWrite:
    def test_crash_is_staged_and_recovered(self, tmp_path):
        report = kill_mid_write(tmp_path)
        assert report["crash_exit"] == -signal.SIGKILL
        # Both torn states (temp sweep + torn-in-place shard) cleaned.
        assert report["stats"]["recovered"] >= 1
        assert report["stats"]["quarantined"] >= 2
        assert report["torn_digest_served"] is False
        assert report["verify_scan"]["quarantined"] == []
        assert not list((tmp_path / "journal").glob("*.intent"))

    def test_live_entries_survive_the_crash(self, tmp_path):
        digest = "ab" + "0" * 62
        doc = {"schedule": {"version": 1, "degree": 1, "slots": []}}
        ArtifactCache(tmp_path).put(digest, doc)
        kill_mid_write(tmp_path)
        assert ArtifactCache(tmp_path).get(digest) == doc


class TestCampaign:
    def test_small_campaign_holds_the_invariant(self, tmp_path):
        report = run_chaos_campaign(
            12,
            config=ChaosConfig(drop_rate=0.1, delay_rate=0.1,
                               delay_seconds=0.01, truncate_rate=0.05,
                               garble_rate=0.05, seed=3),
            cache_dir=tmp_path / "cache",
            kill_writer=True,
            seed=3,
            deadline=30.0,
        )
        assert report["ok"], json.dumps(report, indent=2)
        assert report["corrupted"] == []
        assert report["untyped_failures"] == []
        assert report["completed"] + sum(report["typed_failures"].values()) == 12
        assert report["kill_mid_write"]["torn_digest_served"] is False
        assert report["verify_scan"]["quarantined"] == []

    def test_clean_campaign_completes_everything(self, tmp_path):
        report = run_chaos_campaign(
            8,
            config=ChaosConfig(),  # no faults
            cache_dir=tmp_path / "cache",
            kill_writer=False,
            seed=0,
            deadline=30.0,
        )
        assert report["ok"]
        assert report["completed"] == 8
        assert report["typed_failures"] == {}
        assert report["client_retries"] == 0
