"""Tests for pattern canonicalization under torus translation symmetry."""

import pytest

from repro.compiler.codegen import decode_registers, generate_registers
from repro.compiler.serialize import (
    registers_from_dict,
    registers_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core.paths import route_requests
from repro.core.registry import get_scheduler, scheduler_names
from repro.core.requests import Request, RequestSet
from repro.patterns.classic import ring_pattern, transpose_pattern
from repro.service.canonical import (
    _canonicalize_tuples,
    canonicalize,
    invert_permutation,
    node_permutation,
    permute_registers_dict,
    permute_schedule_dict,
    translate_link,
    translation_group,
)
from repro.topology.kary_ncube import KAryNCube, TieBreak
from repro.topology.mesh import Mesh2D
from repro.topology.torus import Torus2D


def translated(topo, requests, shift):
    """The same pattern with every endpoint moved by ``shift``."""
    sigma = node_permutation(topo, shift)
    return [(sigma[r.src], sigma[r.dst], r.size, r.tag) for r in requests]


class TestTranslationGroup:
    def test_balanced_even_radix_restricts_to_even_offsets(self):
        group = translation_group(Torus2D(4, 4))  # balanced tie-break
        assert len(group) == 4
        assert all(tx % 2 == 0 and ty % 2 == 0 for tx, ty in group)

    def test_positive_tie_break_allows_all(self):
        group = translation_group(Torus2D(4, 4, tie_break=TieBreak.POSITIVE))
        assert len(group) == 16

    def test_odd_radix_unrestricted(self):
        group = translation_group(KAryNCube([3, 3]))
        assert len(group) == 9

    def test_asymmetric_topology_gets_identity(self):
        assert translation_group(Mesh2D(4)) == [()]

    def test_identity_is_member(self):
        topo = Torus2D(4)
        assert tuple(0 for _ in topo.dims) in translation_group(topo)


class TestPermutations:
    def test_node_permutation_is_bijection(self):
        topo = Torus2D(4)
        sigma = node_permutation(topo, (2, 2))
        assert sorted(sigma) == list(range(topo.num_nodes))
        inv = invert_permutation(sigma)
        assert [sigma[inv[v]] for v in range(16)] == list(range(16))

    def test_translate_link_permutes_all_links(self):
        topo = Torus2D(4)
        sigma = node_permutation(topo, (2, 0))
        images = [translate_link(topo, l, sigma) for l in range(topo.num_links)]
        assert sorted(images) == list(range(topo.num_links))

    def test_translate_link_preserves_kind(self):
        topo = Torus2D(4)
        n = topo.num_nodes
        sigma = node_permutation(topo, (0, 2))
        for l in range(n):
            assert translate_link(topo, l, sigma) < n  # injection
        for l in range(n, 2 * n):
            img = translate_link(topo, l, sigma)
            assert n <= img < 2 * n  # ejection

    def test_translated_routes_are_translated_links(self):
        # The admissibility property the whole subsystem rests on:
        # route(sigma(s), sigma(d)) == sigma(route(s, d)), link by link.
        topo = Torus2D(4)
        for shift in translation_group(topo):
            sigma = node_permutation(topo, shift)
            for s in range(topo.num_nodes):
                for d in range(topo.num_nodes):
                    if s == d:
                        continue
                    base = topo.route(s, d)
                    moved = topo.route(sigma[s], sigma[d])
                    assert list(moved) == [
                        translate_link(topo, l, sigma) for l in base
                    ]


class TestCanonicalize:
    def test_order_independent(self):
        topo = Torus2D(4)
        reqs = [(0, 1, 4, 0), (5, 2, 1, 0), (3, 7, 2, 1)]
        a = canonicalize(topo, reqs)
        b = canonicalize(topo, list(reversed(reqs)))
        assert a.key_bytes == b.key_bytes
        assert a.requests == b.requests

    def test_translated_variants_collapse(self):
        topo = Torus2D(4)
        base = transpose_pattern(4)
        keys = set()
        for shift in translation_group(topo):
            c = canonicalize(topo, translated(topo, base, shift))
            keys.add(c.key_bytes)
        assert len(keys) == 1

    def test_distinct_patterns_do_not_collapse(self):
        topo = Torus2D(4)
        a = canonicalize(topo, [(0, 1, 1, 0)])
        b = canonicalize(topo, [(0, 2, 1, 0)])
        assert a.key_bytes != b.key_bytes

    def test_sizes_and_tags_distinguish(self):
        topo = Torus2D(4)
        assert (
            canonicalize(topo, [(0, 1, 1, 0)]).key_bytes
            != canonicalize(topo, [(0, 1, 2, 0)]).key_bytes
        )
        assert (
            canonicalize(topo, [(0, 1, 1, 0)]).key_bytes
            != canonicalize(topo, [(0, 1, 1, 1)]).key_bytes
        )

    def test_packed_and_tuple_paths_agree(self):
        topo = Torus2D(4)
        reqs = [(5, 2, 3, 1), (0, 9, 1, 0), (12, 4, 7, 2)]
        fast = canonicalize(topo, reqs)
        slow = _canonicalize_tuples(topo, reqs, translation_group(topo))
        assert fast.requests == slow.requests
        assert fast.translation == slow.translation
        assert fast.sigma == slow.sigma

    def test_huge_sizes_fall_back_to_tuples(self):
        topo = Torus2D(4)
        c = canonicalize(topo, [(0, 1, 1 << 30, 0)])
        assert c.key_bytes.startswith(b"tuples\0")
        assert c.requests[0][2] == 1 << 30

    def test_accepts_request_sets(self):
        topo = Torus2D(4)
        rs = ring_pattern(16)
        a = canonicalize(topo, rs)
        b = canonicalize(topo, [(r.src, r.dst, r.size, r.tag) for r in rs])
        assert a.key_bytes == b.key_bytes

    def test_sigma_maps_original_to_canonical(self):
        topo = Torus2D(4)
        base = [(1, 6, 2, 0), (9, 12, 1, 3)]
        c = canonicalize(topo, base)
        mapped = sorted(
            (c.sigma[s], c.sigma[d], size, tag) for s, d, size, tag in base
        )
        assert mapped == c.requests


class TestDegreePreservation:
    """Canonicalization must not change what any scheduler achieves."""

    @pytest.mark.parametrize("scheduler", scheduler_names())
    def test_degree_preserved_on_all_schedulers(self, scheduler):
        topo = Torus2D(4)
        base = transpose_pattern(4)
        shift = next(t for t in translation_group(topo) if any(t))
        moved = translated(topo, base, shift)

        def degree_of(tuples):
            rs = RequestSet(
                (Request(s, d, size=size, tag=tag) for s, d, size, tag in tuples),
                allow_duplicates=True,
            )
            conns = route_requests(topo, rs)
            schedule = get_scheduler(scheduler)(conns, topo)
            schedule.validate(conns)
            return schedule.degree

        canonical = canonicalize(topo, moved)
        assert degree_of(canonical.requests) == degree_of(
            sorted((r.src, r.dst, r.size, r.tag) for r in base)
        )


class TestArtifactPermutation:
    @pytest.fixture()
    def compiled(self):
        topo = Torus2D(4)
        requests = transpose_pattern(4)
        conns = route_requests(topo, requests)
        schedule = get_scheduler("combined")(conns, topo)
        return topo, requests, schedule

    def test_identity_schedule_permutation_is_noop(self, compiled):
        topo, _, schedule = compiled
        doc = schedule_to_dict(schedule)
        assert permute_schedule_dict(doc, list(range(topo.num_nodes))) == doc

    def test_permuted_schedule_validates(self, compiled):
        topo, _, schedule = compiled
        sigma = node_permutation(topo, (2, 2))
        doc = permute_schedule_dict(schedule_to_dict(schedule), sigma)
        loaded, conns = schedule_from_dict(topo, doc)  # re-validates
        assert loaded.degree == schedule.degree

    def test_permuted_registers_realise_permuted_schedule(self, compiled):
        topo, _, schedule = compiled
        sigma = node_permutation(topo, (2, 0))
        regs_doc = permute_registers_dict(
            topo, registers_to_dict(generate_registers(topo, schedule)), sigma
        )
        sched_doc = permute_schedule_dict(schedule_to_dict(schedule), sigma)
        permuted_schedule, _ = schedule_from_dict(topo, sched_doc)
        fresh = generate_registers(topo, permuted_schedule)
        assert decode_registers(registers_from_dict(topo, regs_doc)) == (
            decode_registers(fresh)
        )
