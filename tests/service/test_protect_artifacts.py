"""Protection artifacts through the service layer.

``protect_pattern`` is the protection mirror of ``compile_pattern``:
canonicalize -> digest -> cache -> (miss: build + deep-validate +
store) -> detranslate.  These tests pin the cache discipline, the
digest keying, the load-time structural audit (tampered documents must
never decode), and the corrupted-cache self-heal path.
"""

import json

import pytest

from repro.compiler.serialize import ArtifactError
from repro.core import perf
from repro.service.cache import ArtifactCache
from repro.service.compile import compile_digest, compile_pattern
from repro.service.canonical import canonicalize
from repro.service.protect import (
    PROTECTION_VERSION,
    protect_digest,
    protect_pattern,
    protection_from_dict,
    protection_to_dict,
    verify_protection,
)
from repro.topology.torus import Torus2D

TORUS = Torus2D(4)
PAIRS = [(i, (i + 5) % 16) for i in range(16)]


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestProtectPattern:
    def test_miss_then_hit(self, cache):
        first = protect_pattern(TORUS, PAIRS, cache=cache)
        second = protect_pattern(TORUS, PAIRS, cache=cache)
        assert first.cache == "miss"
        assert second.cache == "hit"
        assert second.digest == first.digest
        assert second.doc == first.doc
        assert cache.stats.stores == 1

    def test_uncached_build_counts_a_miss(self):
        perf.reset()
        result = protect_pattern(TORUS, PAIRS)
        assert result.cache == "miss"
        assert perf.COUNTERS.artifact_cache_misses == 1

    def test_served_protection_deep_validates(self, cache):
        protect_pattern(TORUS, PAIRS, cache=cache)
        hit = protect_pattern(TORUS, PAIRS, cache=cache)
        hit.protected.validate()
        report = hit.protected.overhead_report()
        assert report["uncovered"] == 0

    def test_digest_distinct_from_compile_digest(self):
        canonical = canonicalize(TORUS, PAIRS)
        assert protect_digest(TORUS, canonical, "combined", None) \
            != compile_digest(TORUS, canonical, "combined", None)

    def test_digest_keys_on_scheduler(self):
        canonical = canonicalize(TORUS, PAIRS)
        assert protect_digest(TORUS, canonical, "combined", None) \
            != protect_digest(TORUS, canonical, "greedy", None)

    def test_protection_entry_never_serves_schedules(self, cache):
        # Same pattern compiled and protected in one cache: two
        # distinct entries, neither shadowing the other.
        compile_pattern(TORUS, PAIRS, cache=cache)
        protect_pattern(TORUS, PAIRS, cache=cache)
        assert cache.stats.stores == 2

    def test_doc_roundtrip(self):
        result = protect_pattern(TORUS, PAIRS)
        again = protection_from_dict(TORUS, result.doc)
        assert protection_to_dict(again) == result.doc
        again.validate()

    def test_doc_json_serialisable_and_deterministic(self):
        a = protect_pattern(TORUS, PAIRS).doc
        b = protect_pattern(TORUS, PAIRS).doc
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def tampered(mutate):
    doc = json.loads(json.dumps(protect_pattern(TORUS, PAIRS).doc))
    mutate(doc)
    return doc


def augmented_entry(doc):
    return next(
        e for e in doc["scenarios"] if e["kind"] in ("repacked", "augmented")
    )


class TestTamperRejection:
    def test_wrong_protection_version(self):
        doc = tampered(lambda d: d.update(protection=PROTECTION_VERSION + 1))
        with pytest.raises(ArtifactError, match="protection version"):
            verify_protection(TORUS, doc)

    def test_wrong_topology(self):
        doc = protect_pattern(TORUS, PAIRS).doc
        with pytest.raises(ArtifactError, match="built for"):
            verify_protection(Torus2D(8), doc)

    def test_unknown_kind(self):
        def mutate(d):
            d["scenarios"][0]["kind"] = "mystery"
        with pytest.raises(ArtifactError, match="kind"):
            verify_protection(TORUS, tampered(mutate))

    def test_detour_through_failed_fiber(self):
        def mutate(d):
            entry = augmented_entry(d)
            path = next(iter(entry["detours"].values()))
            path[1] = entry["link"]
        with pytest.raises(ArtifactError, match="failed"):
            verify_protection(TORUS, tampered(mutate))

    def test_discontiguous_detour(self):
        def mutate(d):
            entry = augmented_entry(d)
            path = next(iter(entry["detours"].values()))
            path[1], path[2] = path[2], path[1]
        with pytest.raises(ArtifactError):
            verify_protection(TORUS, tampered(mutate))

    def test_dropped_placement(self):
        def mutate(d):
            entry = augmented_entry(d)
            entry["placements"].popitem()
        with pytest.raises(ArtifactError, match="cover"):
            verify_protection(TORUS, tampered(mutate))

    def test_placement_outside_backup_frame(self):
        def mutate(d):
            entry = augmented_entry(d)
            key = next(iter(entry["placements"]))
            entry["placements"][key] = 10**6
        with pytest.raises(ArtifactError, match="backup frame"):
            verify_protection(TORUS, tampered(mutate))

    def test_affected_index_out_of_range(self):
        def mutate(d):
            entry = d["scenarios"][0]
            entry["affected"] = [10**6]
        with pytest.raises(ArtifactError, match="out of range"):
            verify_protection(TORUS, tampered(mutate))

    def test_non_transit_scenario_link(self):
        def mutate(d):
            d["scenarios"][0]["link"] = 0  # an injection fiber
        with pytest.raises(ArtifactError, match="transit"):
            verify_protection(TORUS, tampered(mutate))

    def test_corrupted_cache_entry_self_heals(self, tmp_path):
        root = tmp_path / "cache"
        first = protect_pattern(TORUS, PAIRS, cache=ArtifactCache(root))
        bad = json.loads(json.dumps(first.doc))
        bad["scenarios"][0]["kind"] = "mystery"
        ArtifactCache(root).put(first.digest, bad)
        # A cold process reads the tampered entry off disk: the
        # verifier rejects it, quarantines, and the service rebuilds
        # instead of serving it (the verifier only guards the
        # disk -> process boundary, so the reopen matters).
        cold = ArtifactCache(root)
        again = protect_pattern(TORUS, PAIRS, cache=cold)
        assert again.cache == "miss"
        assert again.doc == first.doc
        assert cold.stats.verify_failures == 1
        final = protect_pattern(TORUS, PAIRS, cache=cold)
        assert final.cache == "hit"
