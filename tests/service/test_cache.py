"""Tests for the content-addressed artifact cache."""

import json

import pytest

from repro.core import perf
from repro.service.cache import ArtifactCache

DIGEST = "ab" + "0" * 62
OTHER = "cd" + "1" * 62
DOC = {"version": 1, "schedule": {"degree": 3, "slots": []}}


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ArtifactCache()
        assert cache.get(DIGEST) is None
        cache.put(DIGEST, DOC)
        assert cache.get(DIGEST) == DOC
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.stores == 1

    def test_lru_eviction_counts(self):
        cache = ArtifactCache(memory_entries=2)
        cache.put("a" * 64, DOC)
        cache.put("b" * 64, DOC)
        cache.get("a" * 64)  # refresh: now b is the oldest
        cache.put("c" * 64, DOC)
        assert cache.stats.evictions == 1
        assert cache.get("a" * 64) is not None
        assert cache.get("b" * 64) is None

    def test_zero_memory_entries_disables_tier(self):
        cache = ArtifactCache(memory_entries=0)
        cache.put(DIGEST, DOC)
        assert cache.get(DIGEST) is None  # no disk tier either

    def test_len_and_contains(self):
        cache = ArtifactCache()
        assert DIGEST not in cache and len(cache) == 0
        cache.put(DIGEST, DOC)
        assert DIGEST in cache and len(cache) == 1


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        ArtifactCache(tmp_path).put(DIGEST, DOC)
        fresh = ArtifactCache(tmp_path)
        assert fresh.get(DIGEST) == DOC
        assert fresh.stats.disk_hits == 1

    def test_sharded_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(DIGEST, DOC)
        assert (tmp_path / DIGEST[:2] / f"{DIGEST}.json").is_file()

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        ArtifactCache(tmp_path).put(DIGEST, DOC)
        fresh = ArtifactCache(tmp_path)
        fresh.get(DIGEST)
        fresh.get(DIGEST)
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.memory_hits == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(DIGEST, DOC)
        cache.put(OTHER, DOC)
        leftovers = [p for p in tmp_path.rglob("*") if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_truncated_entry_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(DIGEST, DOC)
        path = tmp_path / DIGEST[:2] / f"{DIGEST}.json"
        path.write_text(path.read_text()[:20])
        fresh = ArtifactCache(tmp_path)
        assert fresh.get(DIGEST) is None
        assert fresh.stats.corrupt == 1
        assert not path.exists()

    def test_tampered_payload_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(DIGEST, DOC)
        path = tmp_path / DIGEST[:2] / f"{DIGEST}.json"
        wrapped = json.loads(path.read_text())
        wrapped["artifact"]["schedule"]["degree"] = 1  # lie about the degree
        path.write_text(json.dumps(wrapped))
        fresh = ArtifactCache(tmp_path)
        assert fresh.get(DIGEST) is None
        assert fresh.stats.corrupt == 1

    def test_len_spans_both_tiers(self, tmp_path):
        cache = ArtifactCache(tmp_path, memory_entries=1)
        cache.put(DIGEST, DOC)
        cache.put(OTHER, DOC)  # evicts DIGEST from memory, both on disk
        assert len(cache) == 2
        assert DIGEST in cache


class TestCounters:
    def test_perf_counters_wired(self):
        perf.reset()
        cache = ArtifactCache(memory_entries=1)
        cache.get(DIGEST)
        cache.put(DIGEST, DOC)
        cache.get(DIGEST)
        cache.put(OTHER, DOC)  # evicts
        assert perf.COUNTERS.artifact_cache_misses == 1
        assert perf.COUNTERS.artifact_cache_hits == 1
        assert perf.COUNTERS.artifact_cache_stores == 2
        assert perf.COUNTERS.artifact_cache_evictions == 1
        snap = perf.snapshot()
        assert snap["artifact_cache_hit_rate"] == pytest.approx(0.5)

    def test_stats_dict_has_hit_rate(self):
        cache = ArtifactCache()
        cache.put(DIGEST, DOC)
        cache.get(DIGEST)
        out = cache.stats.as_dict()
        assert out["hit_rate"] == 1.0
        assert out["stores"] == 1
