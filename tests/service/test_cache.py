"""Tests for the content-addressed artifact cache."""

import json

import pytest

from repro.core import perf
from repro.service.cache import ArtifactCache

DIGEST = "ab" + "0" * 62
OTHER = "cd" + "1" * 62
DOC = {"version": 1, "schedule": {"degree": 3, "slots": []}}


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ArtifactCache()
        assert cache.get(DIGEST) is None
        cache.put(DIGEST, DOC)
        assert cache.get(DIGEST) == DOC
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.stores == 1

    def test_lru_eviction_counts(self):
        cache = ArtifactCache(memory_entries=2)
        cache.put("a" * 64, DOC)
        cache.put("b" * 64, DOC)
        cache.get("a" * 64)  # refresh: now b is the oldest
        cache.put("c" * 64, DOC)
        assert cache.stats.evictions == 1
        assert cache.get("a" * 64) is not None
        assert cache.get("b" * 64) is None

    def test_zero_memory_entries_disables_tier(self):
        cache = ArtifactCache(memory_entries=0)
        cache.put(DIGEST, DOC)
        assert cache.get(DIGEST) is None  # no disk tier either

    def test_len_and_contains(self):
        cache = ArtifactCache()
        assert DIGEST not in cache and len(cache) == 0
        cache.put(DIGEST, DOC)
        assert DIGEST in cache and len(cache) == 1


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        ArtifactCache(tmp_path).put(DIGEST, DOC)
        fresh = ArtifactCache(tmp_path)
        assert fresh.get(DIGEST) == DOC
        assert fresh.stats.disk_hits == 1

    def test_sharded_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(DIGEST, DOC)
        assert (tmp_path / DIGEST[:2] / f"{DIGEST}.json").is_file()

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        ArtifactCache(tmp_path).put(DIGEST, DOC)
        fresh = ArtifactCache(tmp_path)
        fresh.get(DIGEST)
        fresh.get(DIGEST)
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.memory_hits == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(DIGEST, DOC)
        cache.put(OTHER, DOC)
        leftovers = [p for p in tmp_path.rglob("*") if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_truncated_entry_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(DIGEST, DOC)
        path = tmp_path / DIGEST[:2] / f"{DIGEST}.json"
        path.write_text(path.read_text()[:20])
        fresh = ArtifactCache(tmp_path)
        assert fresh.get(DIGEST) is None
        assert fresh.stats.corrupt == 1
        assert not path.exists()

    def test_tampered_payload_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(DIGEST, DOC)
        path = tmp_path / DIGEST[:2] / f"{DIGEST}.json"
        wrapped = json.loads(path.read_text())
        wrapped["artifact"]["schedule"]["degree"] = 1  # lie about the degree
        path.write_text(json.dumps(wrapped))
        fresh = ArtifactCache(tmp_path)
        assert fresh.get(DIGEST) is None
        assert fresh.stats.corrupt == 1

    def test_len_spans_both_tiers(self, tmp_path):
        cache = ArtifactCache(tmp_path, memory_entries=1)
        cache.put(DIGEST, DOC)
        cache.put(OTHER, DOC)  # evicts DIGEST from memory, both on disk
        assert len(cache) == 2
        assert DIGEST in cache


class TestJournalRecovery:
    def _shard(self, tmp_path, digest=DIGEST):
        return tmp_path / digest[:2] / f"{digest}.json"

    def _intent(self, tmp_path, digest=DIGEST):
        intent = tmp_path / "journal" / f"{digest}.intent"
        intent.parent.mkdir(parents=True, exist_ok=True)
        intent.write_text(json.dumps({"digest": digest}))
        return intent

    def test_clean_write_leaves_no_intent(self, tmp_path):
        ArtifactCache(tmp_path).put(DIGEST, DOC)
        assert list((tmp_path / "journal").glob("*.intent")) == []

    def test_torn_shard_with_intent_is_quarantined_on_open(self, tmp_path):
        ArtifactCache(tmp_path).put(DIGEST, DOC)
        shard = self._shard(tmp_path)
        shard.write_text(shard.read_text()[:17])  # tear mid-JSON
        self._intent(tmp_path)
        fresh = ArtifactCache(tmp_path)
        assert not shard.exists()
        assert (tmp_path / "quarantine" / shard.name).is_file()
        assert fresh.stats.recovered == 1
        assert fresh.stats.quarantined == 1
        assert fresh.get(DIGEST) is None

    def test_clean_shard_with_stale_intent_survives(self, tmp_path):
        # Crash after the rename but before the intent unlink: the
        # shard is whole and must keep being served.
        ArtifactCache(tmp_path).put(DIGEST, DOC)
        self._intent(tmp_path)
        fresh = ArtifactCache(tmp_path)
        assert fresh.get(DIGEST) == DOC
        assert fresh.stats.recovered == 1
        assert fresh.stats.quarantined == 0
        assert list((tmp_path / "journal").glob("*.intent")) == []

    def test_intent_without_shard_is_retired(self, tmp_path):
        # Crash before the rename: nothing on disk, intent retired.
        (tmp_path / DIGEST[:2]).mkdir(parents=True)
        self._intent(tmp_path)
        report = ArtifactCache(tmp_path, recover=False).recover()
        assert report["intents"] == 1
        assert report["quarantined"] == []

    def test_stray_tmp_files_swept(self, tmp_path):
        ArtifactCache(tmp_path).put(DIGEST, DOC)
        stray = tmp_path / DIGEST[:2] / ".tmp-abc123.json"
        stray.write_text('{"artifact": {"half')
        report = ArtifactCache(tmp_path, recover=False).recover()
        assert report["swept"] == 1
        assert not stray.exists()
        assert (tmp_path / "quarantine" / stray.name).is_file()

    def test_recovery_is_idempotent(self, tmp_path):
        ArtifactCache(tmp_path).put(DIGEST, DOC)
        shard = self._shard(tmp_path)
        shard.write_text(shard.read_text()[:17])
        self._intent(tmp_path)
        cache = ArtifactCache(tmp_path)
        second = cache.recover()
        assert second == {"intents": 0, "quarantined": [], "swept": 0}

    def test_recovery_runs_on_open_by_default(self, tmp_path):
        self._intent(tmp_path)
        cache = ArtifactCache(tmp_path)
        assert cache.stats.recovered == 1
        untouched = ArtifactCache(tmp_path, recover=False)
        assert untouched.stats.recovered == 0


class TestVerifier:
    def _reject(self, doc):
        raise ValueError("semantic check failed")

    def test_verifier_runs_on_disk_promotion_only(self, tmp_path):
        calls = []
        ArtifactCache(tmp_path).put(DIGEST, DOC)
        fresh = ArtifactCache(tmp_path)
        verifier = lambda doc: calls.append(doc)
        assert fresh.get(DIGEST, verifier=verifier) == DOC
        assert fresh.get(DIGEST, verifier=verifier) == DOC  # memory hit
        assert len(calls) == 1

    def test_rejected_doc_is_quarantined_miss(self, tmp_path):
        ArtifactCache(tmp_path).put(DIGEST, DOC)
        fresh = ArtifactCache(tmp_path)
        assert fresh.get(DIGEST, verifier=self._reject) is None
        assert fresh.stats.verify_failures == 1
        assert fresh.stats.quarantined == 1
        assert fresh.stats.misses == 1
        assert not (tmp_path / DIGEST[:2] / f"{DIGEST}.json").exists()

    def test_memory_hits_skip_verifier(self):
        cache = ArtifactCache()
        cache.put(DIGEST, DOC)
        assert cache.get(DIGEST, verifier=self._reject) == DOC


class TestVerifyScan:
    def test_clean_cache_reports_all_ok(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(DIGEST, DOC)
        cache.put(OTHER, DOC)
        report = cache.verify_scan()
        assert report == {"checked": 2, "ok": 2, "quarantined": []}

    def test_torn_shard_quarantined_by_scan(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(DIGEST, DOC)
        cache.put(OTHER, DOC)
        shard = tmp_path / OTHER[:2] / f"{OTHER}.json"
        shard.write_text(shard.read_text()[:40])
        report = ArtifactCache(tmp_path).verify_scan()
        assert report["checked"] == 2
        assert report["ok"] == 1
        assert report["quarantined"] == [OTHER]
        assert not shard.exists()

    def test_semantic_failures_quarantined_by_scan(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(DIGEST, DOC)

        def reject(doc):
            raise ValueError("conflict found")

        report = ArtifactCache(tmp_path).verify_scan(verifier=reject)
        assert report["quarantined"] == [DIGEST]


class TestCounters:
    def test_perf_counters_wired(self):
        perf.reset()
        cache = ArtifactCache(memory_entries=1)
        cache.get(DIGEST)
        cache.put(DIGEST, DOC)
        cache.get(DIGEST)
        cache.put(OTHER, DOC)  # evicts
        assert perf.COUNTERS.artifact_cache_misses == 1
        assert perf.COUNTERS.artifact_cache_hits == 1
        assert perf.COUNTERS.artifact_cache_stores == 2
        assert perf.COUNTERS.artifact_cache_evictions == 1
        snap = perf.snapshot()
        assert snap["artifact_cache_hit_rate"] == pytest.approx(0.5)

    def test_stats_dict_has_hit_rate(self):
        cache = ArtifactCache()
        cache.put(DIGEST, DOC)
        cache.get(DIGEST)
        out = cache.stats.as_dict()
        assert out["hit_rate"] == 1.0
        assert out["stores"] == 1
