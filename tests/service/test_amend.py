"""Tests for the service's epoch-numbered amend streams."""

import asyncio

import pytest

from repro.compiler.serialize import schedule_from_dict
from repro.core.configuration import ScheduleValidationError
from repro.service.amend import (
    AmendRegistry,
    AmendStream,
    amend_epoch_digest,
    amend_root_digest,
    parse_rows,
)
from repro.service.cache import ArtifactCache
from repro.service.client import AsyncCompileClient, ServerError
from repro.service.errors import EpochConflict, ProtocolError
from repro.service.server import CompileServer
from repro.topology.torus import Torus2D

TORUS4_SPEC = {"kind": "torus", "width": 4}
RING8 = [(i, (i + 1) % 8, 1, 0) for i in range(8)]


def run(coro):
    return asyncio.run(coro)


async def with_server(fn, **server_kwargs):
    server = CompileServer(**server_kwargs)
    await server.start()
    host, port = server.address
    try:
        return await fn(server, host, port)
    finally:
        await server.shutdown()


class TestParseRows:
    def test_accepts_2_to_4_columns(self):
        assert parse_rows([[0, 1], [2, 3, 5], [4, 5, 1, 7]], what="add") == [
            (0, 1, 1, 0), (2, 3, 5, 0), (4, 5, 1, 7),
        ]

    @pytest.mark.parametrize("bad", [[[0]], [[0, 1, 2, 3, 4]], [0], ["xy"]])
    def test_malformed_rows_rejected(self, bad):
        with pytest.raises(ProtocolError):
            parse_rows(bad, what="add")


class TestDigests:
    def test_root_keyed_by_pattern_and_scheduler(self, torus4):
        a = amend_root_digest(torus4, RING8, "greedy", None)
        assert a == amend_root_digest(torus4, RING8, "greedy", None)
        assert a != amend_root_digest(torus4, RING8[:-1], "greedy", None)
        assert a != amend_root_digest(torus4, RING8, "coloring", None)

    def test_root_not_translation_canonicalised(self, torus4):
        """An amend stream lives in the caller's node ids: a shifted
        pattern is a different stream, unlike plain compile digests."""
        shifted = [(s + 1, (d + 1) % 16, size, tag)
                   for s, d, size, tag in [(0, 1, 1, 0)]]
        assert amend_root_digest(torus4, [(0, 1, 1, 0)], "greedy", None) != \
            amend_root_digest(torus4, shifted, "greedy", None)

    def test_epoch_digest_chains_history(self):
        d1 = amend_epoch_digest("root", [(0, 1, 1, 0)], [])
        d2 = amend_epoch_digest(d1, [], [(0, 1, 1, 0)])
        assert d1 != d2
        assert amend_epoch_digest("root", [(0, 1, 1, 0)], []) == d1
        assert amend_epoch_digest("other", [(0, 1, 1, 0)], []) != d1


class TestAmendStream:
    def make(self, tmp_path, torus4, pattern=RING8):
        cache = ArtifactCache(tmp_path)
        return AmendStream(torus4, pattern, cache=cache), cache

    def test_epoch_zero_state(self, tmp_path, torus4):
        stream, cache = self.make(tmp_path, torus4)
        assert stream.epoch == 0
        assert stream.digest == stream.root
        assert stream.action == "compile"
        assert cache.get(stream.root)["lineage"]["parent"] is None

    def test_amend_bumps_epoch_and_stores_lineage(self, tmp_path, torus4):
        stream, cache = self.make(tmp_path, torus4)
        root = stream.digest
        stream.amend(epoch=0, add=[(0, 2, 1, 0)], remove=[(0, 1, 1, 0)])
        assert stream.epoch == 1
        doc = cache.get(stream.digest)
        lineage = doc["lineage"]
        assert lineage["root"] == stream.root
        assert lineage["parent"] == root
        assert lineage["epoch"] == 1
        assert lineage["add"] == [[0, 2, 1, 0]]
        assert lineage["remove"] == [[0, 1, 1, 0]]
        assert lineage["action"] in ("amend", "amend+repack", "recompile")
        # The stored schedule materialises and validates.
        schedule_from_dict(torus4, doc["schedule"])

    def test_stale_epoch_refused_with_current(self, tmp_path, torus4):
        stream, _ = self.make(tmp_path, torus4)
        stream.amend(epoch=0, add=[(0, 2, 1, 0)])
        with pytest.raises(EpochConflict) as exc:
            stream.amend(epoch=0, add=[(0, 5, 1, 0)])
        assert exc.value.current_epoch == 1
        assert stream.epoch == 1  # state untouched

    def test_unknown_remove_row_leaves_state(self, tmp_path, torus4):
        stream, _ = self.make(tmp_path, torus4)
        with pytest.raises(ProtocolError):
            stream.amend(epoch=0, remove=[(9, 9, 1, 0)])
        assert stream.epoch == 0
        # The key map rolled back: the legitimate removal still works.
        stream.amend(epoch=0, remove=[(0, 1, 1, 0)])
        assert stream.epoch == 1

    def test_partial_bad_update_rolls_back_resolved_rows(self, tmp_path, torus4):
        stream, _ = self.make(tmp_path, torus4)
        with pytest.raises(ProtocolError):
            # First row resolves, second does not; both must roll back.
            stream.amend(epoch=0, remove=[(0, 1, 1, 0), (9, 9, 1, 0)])
        assert stream.epoch == 0
        stream.amend(epoch=0, remove=[(0, 1, 1, 0)])

    def test_duplicate_pairs_removed_oldest_first(self, tmp_path, torus4):
        pattern = [(0, 1, 1, 0), (0, 1, 1, 0), (2, 3, 1, 0)]
        stream, _ = self.make(tmp_path, torus4, pattern=pattern)
        stream.amend(epoch=0, remove=[(0, 1, 1, 0)])
        left = {c.index for c in stream.engine.connections()}
        assert left == {1, 2}  # index 0 (oldest) went first
        stream.amend(epoch=1, remove=[(0, 1, 1, 0)])
        assert {c.index for c in stream.engine.connections()} == {2}

    def test_schedule_valid_after_every_epoch(self, tmp_path, torus4):
        stream, _ = self.make(tmp_path, torus4)
        for epoch in range(6):
            stream.amend(
                epoch=epoch,
                add=[(epoch, (epoch + 4) % 16, 1, 7)],
                remove=[RING8[epoch][:4]] if epoch < len(RING8) else [],
            )
            stream.engine.schedule.validate(stream.engine.connections())


class TestAmendRegistry:
    def test_open_is_idempotent(self, torus4):
        reg = AmendRegistry()
        s1, created1 = reg.open(torus4, RING8)
        s1.amend(epoch=0, add=[(0, 2, 1, 0)])
        s2, created2 = reg.open(torus4, RING8)
        assert created1 and not created2
        assert s2 is s1 and s2.epoch == 1  # resume, not reset
        assert reg.opened == 1 and len(reg) == 1

    def test_unknown_root_rejected(self):
        with pytest.raises(ProtocolError):
            AmendRegistry().get("no-such-root")

    def test_stats_count_amends_and_conflicts(self, torus4):
        reg = AmendRegistry()
        stream, _ = reg.open(torus4, RING8)
        reg.amend(stream.root, epoch=0, add=[(0, 2, 1, 0)])
        with pytest.raises(EpochConflict):
            reg.amend(stream.root, epoch=0, add=[(0, 5, 1, 0)])
        assert reg.stats() == {
            "streams": 1, "max_streams": reg.max_streams,
            "opened": 1, "amends": 1, "conflicts": 1,
            "evictions": 0, "resumes": 0, "resets": 0, "takeovers": 0,
        }


class TestRegistryBound:
    """LRU eviction + resume-from-cache of the bounded registry."""

    def patterns(self, n):
        """n distinct patterns (distinct roots) on a 4x4 torus."""
        return [
            [(i, (i + k + 1) % 16, 1, 0) for i in range(8)]
            for k in range(n)
        ]

    def test_cap_evicts_lru(self, torus4):
        reg = AmendRegistry(max_streams=2)
        p = self.patterns(3)
        s0, _ = reg.open(torus4, p[0])
        s1, _ = reg.open(torus4, p[1])
        reg.get(s0.root)  # touch: s1 becomes LRU
        reg.open(torus4, p[2])
        assert len(reg) == 2 and reg.evictions == 1
        assert s0.root in reg._streams and s1.root not in reg._streams

    def test_evicted_stream_resumes_from_cache(self, torus4, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        reg = AmendRegistry(cache, max_streams=1)
        p = self.patterns(2)
        s0, _ = reg.open(torus4, p[0])
        reg.amend(s0.root, epoch=0, add=[(0, 2, 1, 9)])
        root, epoch, digest = s0.root, s0.epoch, s0.digest
        reg.open(torus4, p[1])  # evicts s0
        assert reg.evictions == 1 and root not in reg._streams
        # get() resumes the evicted stream at its stored epoch/digest...
        resumed = reg.get(root)
        assert resumed is not s0
        assert (resumed.root, resumed.epoch, resumed.digest) == (
            root, epoch, digest
        )
        assert reg.resumes == 1
        # ...and the lineage continues: the next amend chains onto the
        # stored digest exactly as the live stream would have.
        after = reg.amend(root, epoch=epoch, add=[(1, 3, 1, 9)])
        assert after.epoch == epoch + 1
        assert after.digest == amend_epoch_digest(digest, [(1, 3, 1, 9)], [])

    def test_idempotent_open_resumes_not_resets(self, torus4, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        reg = AmendRegistry(cache, max_streams=1)
        p = self.patterns(2)
        s0, _ = reg.open(torus4, p[0])
        reg.amend(s0.root, epoch=0, add=[(0, 2, 1, 9)])
        reg.open(torus4, p[1])  # evicts s0 at epoch 1
        reopened, created = reg.open(torus4, p[0])
        assert not created and reopened.epoch == 1  # resume, not reset
        assert reg.resumes == 1 and reg.resets == 0

    def test_artifact_gone_get_raises_open_resets(self, torus4, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        reg = AmendRegistry(cache, max_streams=1)
        p = self.patterns(2)
        s0, _ = reg.open(torus4, p[0])
        reg.open(torus4, p[1])  # evicts s0
        reg.cache = ArtifactCache()  # the epoch artifact is gone
        with pytest.raises(ProtocolError, match="evicted"):
            reg.get(s0.root)
        fresh, created = reg.open(torus4, p[0])
        assert created and fresh.epoch == 0 and reg.resets == 1


class TestAmendVerb:
    """The wire-level amend verb end to end."""

    def test_open_then_amend_then_conflict(self):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port) as c:
                opened = await c.amend(
                    TORUS4_SPEC, pairs=[[i, (i + 1) % 8] for i in range(8)]
                )
                assert opened["epoch"] == 0 and opened["cache"] == "open"
                root = opened["root"]

                amended = await c.amend(
                    root=root, epoch=0, add=[[0, 5]], remove=[[0, 1]],
                )
                assert amended["epoch"] == 1
                assert amended["root"] == root
                assert amended["digest"] != root
                assert amended["lineage"]["parent"] == opened["digest"]
                assert amended["action"] in ("amend", "amend+repack", "recompile")

                # The returned schedule materialises and validates
                # client-side against the amended pattern.
                topo = Torus2D(4)
                schedule_from_dict(topo, amended["schedule"])

                with pytest.raises(EpochConflict) as exc:
                    await c.amend(root=root, epoch=0, add=[[1, 6]])
                assert exc.value.current_epoch == 1
            stats = server.amends.stats()
            assert stats["amends"] == 1 and stats["conflicts"] == 1

        run(with_server(go))

    def test_reopen_resumes_current_epoch(self):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port) as c:
                pairs = [[i, (i + 1) % 8] for i in range(8)]
                opened = await c.amend(TORUS4_SPEC, pairs=pairs)
                await c.amend(root=opened["root"], epoch=0, add=[[0, 5]])
                again = await c.amend(TORUS4_SPEC, pairs=pairs)
            assert again["cache"] == "resume"
            assert again["epoch"] == 1

        run(with_server(go))

    def test_epoch_artifacts_are_cache_entries(self, tmp_path):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port) as c:
                opened = await c.amend(TORUS4_SPEC, pairs=[[0, 1], [2, 3]])
                amended = await c.amend(
                    root=opened["root"], epoch=0, add=[[4, 5]],
                )
            for digest in (opened["digest"], amended["digest"]):
                doc = server.cache.get(digest)
                assert doc["lineage"]["root"] == opened["root"]

        run(with_server(go, cache=ArtifactCache(tmp_path)))

    def test_malformed_amend_requests_are_replies(self):
        async def go(server, host, port):
            async with AsyncCompileClient(host, port) as c:
                for bad in (
                    {"op": "amend"},  # neither topology nor root
                    {"op": "amend", "root": "nope", "epoch": 0,
                     "add": [[0, 1]]},  # unknown root
                    {"op": "amend", "topology": TORUS4_SPEC},  # no pattern
                ):
                    with pytest.raises(ServerError):
                        await c.request(bad)
                opened = await c.amend(TORUS4_SPEC, pairs=[[0, 1]])
                for bad in (
                    {"op": "amend", "root": opened["root"],
                     "add": [[0, 2]]},  # missing epoch
                    {"op": "amend", "root": opened["root"], "epoch": 0},
                    {"op": "amend", "root": opened["root"], "epoch": 0,
                     "add": [[0]]},  # malformed row
                    {"op": "amend", "root": opened["root"], "epoch": 0,
                     "remove": [[9, 9]]},  # matches nothing
                ):
                    with pytest.raises(ServerError):
                        await c.request(bad)
                # Stream survived all of it at epoch 0.
                ok = await c.amend(root=opened["root"], epoch=0, add=[[0, 2]])
                assert ok["epoch"] == 1

        run(with_server(go))
