"""Tests for the farm's self-healing layer: probe-loop membership,
anti-entropy repair, amend-stream failover, and chaos partitions."""

import asyncio

import pytest

from repro.service.amend import amend_epoch_digest, parse_rows
from repro.service.client import AsyncCompileClient
from repro.service.errors import EpochConflict
from repro.service.farm import Farm, ShardMap, route_digest

TORUS4 = {"kind": "torus", "width": 4}
RING16 = {"pattern": "ring", "nodes": 16}


def run(coro):
    return asyncio.run(coro)


async def with_farm(fn, **farm_kwargs):
    farm_kwargs.setdefault("workers", 0)
    farm = Farm(**farm_kwargs)
    await farm.start()
    try:
        return await fn(farm)
    finally:
        await farm.shutdown()


async def drain_pushes(farm):
    """Fire-and-forget replica pushes must land before any audit."""
    for node in list(farm.nodes.values()):
        if node._repl_tasks:
            await asyncio.gather(*node._repl_tasks, return_exceptions=True)


# ----------------------------------------------------------------------
# membership: with_node, reshard races
# ----------------------------------------------------------------------

class TestShardMapWithNode:
    def test_with_node_bumps_version_and_readmits(self):
        base = ShardMap(
            {"node0": {"host": "127.0.0.1", "port": 1},
             "node1": {"host": "127.0.0.1", "port": 2}},
            replication=2, version=4,
        )
        smaller = base.without("node1")
        back = smaller.with_node("node1", {"host": "127.0.0.1", "port": 2})
        assert back.version == 6
        assert set(back.nodes) == {"node0", "node1"}
        # Same membership => same placement as the original ring.
        assert back.owners("a" * 64) == base.owners("a" * 64)


class TestReshardRace:
    """Adopt-if-newer must converge on v+1 whichever order v and v+1
    arrive, including when they arrive concurrently."""

    def maps(self, farm):
        base = farm.router.shard_map  # version 1
        v2 = base.without("node2")
        v3 = v2.with_node(
            "node2",
            {"host": farm.endpoints["node2"][0],
             "port": farm.endpoints["node2"][1]},
        )
        assert v2.version == 2 and v3.version == 3
        return v2, v3

    def test_newer_then_stale(self):
        async def go(farm):
            v2, v3 = self.maps(farm)
            node = farm.nodes["node0"]
            async with AsyncCompileClient(*node.address, retry=None) as c:
                first = await c.request(
                    {"op": "reshard", "shard_map": v3.as_dict()}
                )
                second = await c.request(
                    {"op": "reshard", "shard_map": v2.as_dict()}
                )
            assert first["adopted"] is True and first["version"] == 3
            assert second["adopted"] is False and second["version"] == 3
            assert node.shard_map.version == 3
        run(with_farm(go, nodes=3, replication=2))

    def test_stale_then_newer(self):
        async def go(farm):
            v2, v3 = self.maps(farm)
            node = farm.nodes["node0"]
            async with AsyncCompileClient(*node.address, retry=None) as c:
                first = await c.request(
                    {"op": "reshard", "shard_map": v2.as_dict()}
                )
                second = await c.request(
                    {"op": "reshard", "shard_map": v3.as_dict()}
                )
            assert first["adopted"] is True and first["version"] == 2
            assert second["adopted"] is True and second["version"] == 3
            assert node.shard_map.version == 3
        run(with_farm(go, nodes=3, replication=2))

    def test_concurrent_pushes_converge(self):
        async def go(farm):
            v2, v3 = self.maps(farm)
            node = farm.nodes["node0"]

            async def push(m):
                async with AsyncCompileClient(*node.address, retry=None) as c:
                    return await c.request(
                        {"op": "reshard", "shard_map": m.as_dict()}
                    )

            await asyncio.gather(push(v2), push(v3))
            assert node.shard_map.version == 3
        run(with_farm(go, nodes=3, replication=2))


# ----------------------------------------------------------------------
# replica push retry + failure surfacing (satellite)
# ----------------------------------------------------------------------

class TestPushRetry:
    def test_partitioned_push_retries_then_fails_and_is_surfaced(self):
        async def go(farm):
            req = {"op": "compile", "topology": TORUS4, "pattern": RING16}
            digest = route_digest(req)
            first, second = farm.router.shard_map.owners(digest)
            for node in farm.nodes.values():
                node.push_retry_delay = 0.01
            farm.partition(first, second)
            async with AsyncCompileClient(
                *farm.nodes[first].address, retry=None
            ) as c:
                reply = await c.request(dict(req))
            assert reply["cache"] == "miss"
            await drain_pushes(farm)
            node = farm.nodes[first]
            assert node.replica_push_retries == 1
            assert node.replica_push_failures == 1
            assert digest not in farm.nodes[second].cache
            # Surfaced in the router's aggregated stats.
            async with AsyncCompileClient(*farm.router_address) as c:
                stats = await c.request({"op": "stats"})
            repl = stats["replication"]
            assert repl["push_retries"] == 1
            assert repl["push_failures"] == 1
            # Heal + one repair sweep on the starved owner closes R.
            farm.heal()
            async with AsyncCompileClient(
                *farm.nodes[second].address, retry=None
            ) as c:
                swept = await c.request({"op": "repair"})
            assert swept["repaired"] >= 1
            assert digest in farm.nodes[second].cache
        run(with_farm(go, nodes=3, replication=2))


# ----------------------------------------------------------------------
# router connection hygiene on membership change (satellite)
# ----------------------------------------------------------------------

class TestDemotePoolCleanup:
    def test_adopt_map_closes_removed_nodes_pool(self):
        async def go(farm):
            router = farm.router
            conn = await router._acquire("node1")
            router._release("node1", conn)
            assert router._pools.get("node1")
            writer = router._pools["node1"][0][1]
            await router._demote("node1")
            assert "node1" not in router._pools
            assert writer.is_closing()
            # The departed node's endpoint is remembered for rejoin.
            assert "node1" in router._departed
        run(with_farm(go, nodes=3, replication=2))

    def test_skew_adoption_also_retires_pools(self):
        async def go(farm):
            router = farm.router
            conn = await router._acquire("node2")
            router._release("node2", conn)
            writer = router._pools["node2"][0][1]
            newer = router.shard_map.without("node2")
            router._adopt_map(newer)
            assert "node2" not in router._pools
            assert writer.is_closing()
        run(with_farm(go, nodes=3, replication=2))


# ----------------------------------------------------------------------
# active health probing: suspect -> dead -> rejoin
# ----------------------------------------------------------------------

class TestProbeMembership:
    def test_probe_demotes_after_suspect_threshold(self):
        async def go(farm):
            await farm.kill_node("node1")
            state = await farm.router.probe_round()
            # One failed probe: suspect, not yet dead.
            assert state["suspect"].get("node1") == 1
            assert "node1" in farm.router.shard_map.nodes
            await farm.router.probe_round()
            assert "node1" not in farm.router.shard_map.nodes
            assert farm.router.probe_demotions == 1
            assert farm.router.shard_map.version == 2
            # Survivors were pushed the demoted map.
            for node in farm.nodes.values():
                assert node.shard_map.version == 2
        run(with_farm(go, nodes=3, replication=2, probe_timeout=0.2))

    def test_alive_node_recovers_from_suspicion(self):
        async def go(farm):
            router = farm.router
            router._suspect["node0"] = 1  # one historic dropped probe
            await router.probe_round()
            assert router._suspect == {}
            assert "node0" in router.shard_map.nodes
        run(with_farm(go, nodes=3, replication=2, probe_timeout=0.2))

    def test_restarted_node_rejoins_and_repairs(self):
        async def go(farm):
            # Seed an artifact and let replication land.
            async with farm.client() as c:
                reply = await c.compile(TORUS4, pattern=RING16)
            digest = reply["digest"]
            await drain_pushes(farm)
            victim = farm.router.shard_map.owners(digest)[0]
            await farm.kill_node(victim)
            for _ in range(2):
                await farm.router.probe_round()
            assert victim not in farm.router.shard_map.nodes

            # Fresh process, empty cache, stale map: one probe round
            # must rejoin it and its targeted repair must restore the
            # artifact it owns, without any client traffic.
            await farm.restart_node(victim)
            assert digest not in farm.nodes[victim].cache
            await farm.router.probe_round()
            assert victim in farm.router.shard_map.nodes
            assert farm.router.rejoins == 1
            assert farm.router.shard_map.version == 3
            # All three nodes (rejoiner included) adopted the map.
            for node in farm.nodes.values():
                assert node.shard_map.version == 3
            assert digest in farm.nodes[victim].cache
            assert farm.nodes[victim].replicas_repaired >= 1

            # And it serves its owned digest directly: no router hop.
            req = {"op": "compile", "topology": TORUS4, "pattern": RING16}
            async with AsyncCompileClient(
                *farm.nodes[victim].address, retry=None
            ) as c:
                served = await c.request(dict(req))
            assert served["cache"] == "hit"
            assert served["digest"] == digest
        run(with_farm(go, nodes=3, replication=2, probe_timeout=0.2))

    def test_draining_node_is_not_rejoined(self):
        async def go(farm):
            router = farm.router
            node = farm.nodes["node2"]
            # Manufacture the departed state without killing the node,
            # then make it unready: alive-but-draining must stay out.
            await router._demote("node2")
            node._shutdown.set()
            await router.probe_round()
            assert "node2" not in router.shard_map.nodes
            assert router.rejoins == 0
            assert "node2" in router._departed
        run(with_farm(go, nodes=3, replication=2, probe_timeout=0.2))


# ----------------------------------------------------------------------
# anti-entropy: digests inventory + repair sweeps
# ----------------------------------------------------------------------

class TestAntiEntropy:
    def test_digests_inventory_carries_spec_and_hash(self):
        async def go(farm):
            async with farm.client() as c:
                reply = await c.compile(TORUS4, pattern=RING16)
            digest = reply["digest"]
            holder = next(
                node for node in farm.nodes.values()
                if digest in node.cache
            )
            async with AsyncCompileClient(*holder.address, retry=None) as c:
                inv = await c.request({"op": "digests"})
            entries = {e["digest"]: e for e in inv["inventory"]}
            assert digest in entries
            entry = entries[digest]
            assert entry["payload_sha256"]
            assert entry["topology_spec"] == TORUS4
        run(with_farm(go, nodes=3, replication=2))

    def test_repair_sweep_restores_dropped_replica(self):
        async def go(farm):
            for node in farm.nodes.values():
                node.drop_replica_push_rate = 1.0  # every push lost
            async with farm.client() as c:
                reply = await c.compile(TORUS4, pattern=RING16)
            digest = reply["digest"]
            await drain_pushes(farm)
            for node in farm.nodes.values():
                node.drop_replica_push_rate = 0.0
            owners = farm.router.shard_map.owners(digest)
            starved = [
                name for name in owners
                if digest not in farm.nodes[name].cache
            ]
            assert len(starved) == 1  # the serving owner kept its copy
            node = farm.nodes[starved[0]]
            async with AsyncCompileClient(*node.address, retry=None) as c:
                swept = await c.request({"op": "repair"})
            assert swept["ok"] and swept["repaired"] == 1
            assert digest in node.cache
            assert node.replicas_repaired == 1
            assert node.anti_entropy_rounds == 1
            # Idempotent: a second sweep finds nothing missing.
            async with AsyncCompileClient(*node.address, retry=None) as c:
                again = await c.request({"op": "repair"})
            assert again["repaired"] == 0
        run(with_farm(go, nodes=3, replication=2, chaos_seed=7))

    def test_sweep_never_adopts_unverifiable_artifact(self):
        async def go(farm):
            # A peer advertising a digest with no topology spec (e.g. a
            # replica it adopted before specs existed) must be skipped,
            # not adopted blind.
            req = {"op": "compile", "topology": TORUS4, "pattern": RING16}
            digest = route_digest(req)
            first, second = farm.router.shard_map.owners(digest)
            async with AsyncCompileClient(
                *farm.nodes[first].address, retry=None
            ) as c:
                await c.request(dict(req))
            await drain_pushes(farm)
            farm.nodes[second].cache._memory.pop(digest, None)
            farm.nodes[first]._specs.pop(digest, None)
            farm.nodes[second]._specs.pop(digest, None)
            async with AsyncCompileClient(
                *farm.nodes[second].address, retry=None
            ) as c:
                swept = await c.request({"op": "repair"})
            assert swept["repaired"] == 0
            assert digest not in farm.nodes[second].cache
        run(with_farm(go, nodes=3, replication=2))


# ----------------------------------------------------------------------
# amend-stream failover
# ----------------------------------------------------------------------

class TestAmendFailover:
    PAIRS = [[i, (i + 1) % 16] for i in range(8)]

    def test_takeover_continues_unbroken_chain(self):
        async def go(farm):
            client = farm.client()
            await client.connect()
            try:
                opened = await client.amend(TORUS4, pairs=self.PAIRS)
                root, chain = opened["root"], opened["digest"]
                assert chain == root  # epoch 0 digest is the root
                epoch = opened["epoch"]
                for e in range(3):
                    add = [[e, (e + 5) % 16, 1, 3]]
                    reply = await client.amend(root=root, epoch=epoch, add=add)
                    expect = amend_epoch_digest(
                        chain, parse_rows(add, what="add"), []
                    )
                    assert reply["digest"] == expect
                    chain, epoch = reply["digest"], reply["epoch"]

                primary = farm.router.shard_map.owners(root)[0]
                await drain_pushes(farm)  # heads must reach the replicas
                await farm.kill_node(primary)
                for _ in range(2):
                    await farm.router.probe_round()
                assert primary not in farm.router.shard_map.nodes

                # The next amend lands on the new owner, which resumes
                # the stream from the replicated head: same chain.
                add = [[9, 2, 1, 3]]
                reply = await client.amend(root=root, epoch=epoch, add=add)
                expect = amend_epoch_digest(
                    chain, parse_rows(add, what="add"), []
                )
                assert reply["digest"] == expect
                stale_epoch, chain, epoch = (
                    epoch, reply["digest"], reply["epoch"]
                )
                new_owner = farm.router.shard_map.owners(root)[0]
                assert farm.nodes[new_owner].amend_takeovers == 1
                assert farm.nodes[new_owner].amends.takeovers == 1

                # A racer replaying the consumed epoch gets the typed
                # conflict naming the winning head: no fork, no reset.
                with pytest.raises(EpochConflict) as excinfo:
                    await client.amend(
                        root=root, epoch=stale_epoch, add=[[4, 11, 1, 3]]
                    )
                assert excinfo.value.current_epoch == epoch
                assert excinfo.value.current_digest == chain

                # And the stream keeps going on the survivor.
                reply = await client.amend(
                    root=root, epoch=epoch, add=[[5, 12, 1, 3]]
                )
                assert reply["epoch"] == epoch + 1
            finally:
                await client.close()
        run(with_farm(go, nodes=3, replication=2, probe_timeout=0.2))


# ----------------------------------------------------------------------
# chaos partitions (Farm-level injection)
# ----------------------------------------------------------------------

class TestPartitions:
    def test_one_way_partition_blocks_only_peer_traffic(self):
        async def go(farm):
            req = {"op": "compile", "topology": TORUS4, "pattern": RING16}
            digest = route_digest(req)
            first, second = farm.router.shard_map.owners(digest)
            farm.partition(first, second)
            assert not farm._peer_allowed(first, second)
            assert farm._peer_allowed(second, first)  # one-way
            # Client traffic (router -> node) is unaffected.
            async with AsyncCompileClient(*farm.router_address) as c:
                reply = await c.request(dict(req))
            assert reply["ok"] and reply["digest"] == digest
            farm.heal(first, second)
            assert farm._peer_allowed(first, second)
        run(with_farm(go, nodes=3, replication=2))

    def test_heal_variants(self):
        farm = Farm(3)
        farm.partition("node0", "node1", both_ways=True)
        farm.partition("node0", "node2")
        farm.heal("node0", "node1")
        assert farm.partitions == {("node1", "node0"), ("node0", "node2")}
        farm.heal("node2")
        assert farm.partitions == {("node1", "node0")}
        farm.heal()
        assert farm.partitions == set()


# ----------------------------------------------------------------------
# the scripted HA campaign (small, deterministic)
# ----------------------------------------------------------------------

class TestHaCampaign:
    def test_all_gates_hold(self):
        from repro.service.chaos import run_farm_ha_campaign

        report = run_farm_ha_campaign(
            16, nodes=3, replication=2, seed=11, amend_steps=3,
        )
        assert report["ok"], report["gates"]
        assert report["corrupted"] == []
        assert report["untyped_failures"] == []
        assert report["availability"] == 1.0
        assert report["restore_sweeps"] <= 3
        assert report["replication_stats"]["amend_takeovers"] >= 1
        assert report["router"]["rejoins"] >= 1
