"""Integration tests for the remaining CLI subcommands."""

import json

import pytest

from repro.cli import main


class TestTables:
    def test_table1_quick(self, capsys):
        assert main(["table1", "--patterns", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "4000" in out

    def test_table2_quick(self, capsys):
        assert main(["table2", "--samples", "10"]) == 0
        out = capsys.readouterr().out
        assert "redistributions" in out

    def test_table1_workers_flag(self, capsys):
        assert main(["table1", "--patterns", "1", "--workers", "2"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "P3M 5" in out

    def test_table5_small(self, capsys):
        assert main(["table5", "--gs-grids", "64", "--p3m-grids", "32"]) == 0
        out = capsys.readouterr().out
        assert "TSCF" in out and "compiled" in out

    def test_programs(self, capsys):
        assert main(["programs"]) == 0
        out = capsys.readouterr().out
        assert "P3M" in out and "per-phase K" in out

    def test_ablation_quick(self, capsys):
        assert main(["ablation", "--patterns", "1"]) == 0
        out = capsys.readouterr().out
        assert "dsatur" in out


class TestTools:
    def test_trace(self, capsys):
        assert main([
            "trace", "--spec", '{"pattern": "pairs", "pairs": [[0, 1], [0, 2]], "size": 8}',
            "--degree", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "established" in out
        assert "failed reservations" in out

    def test_trace_no_hops(self, capsys):
        assert main([
            "trace", "--spec", '{"pattern": "pairs", "pairs": [[0, 9]]}',
            "--no-hops",
        ]) == 0
        assert "res-hop" not in capsys.readouterr().out

    def test_compile_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "artifact.json"
        assert main([
            "compile", "--spec", '{"pattern": "ring", "nodes": 64, "size": 8}',
            "--output", str(out_file),
        ]) == 0
        assert "degree 2" in capsys.readouterr().out
        doc = json.loads(out_file.read_text())
        assert doc["topology"].startswith("torus2d:8x8")
        from repro.compiler.serialize import load_artifact
        from repro.topology.torus import Torus2D

        schedule, _ = load_artifact(out_file, Torus2D(8))
        assert schedule.degree == 2

    def test_compile_with_algorithm(self, tmp_path, capsys):
        out_file = tmp_path / "g.json"
        assert main([
            "compile", "--spec", '{"pattern": "pairs", "pairs": [[0, 1]]}',
            "--output", str(out_file), "--algorithm", "greedy",
        ]) == 0
        assert "greedy" in capsys.readouterr().out

    def test_perf_single_kernel(self, capsys):
        assert main(["perf", "--kernel", "bitmask", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "Scheduling kernel benchmark" in out
        assert "route_cache_hits" in out

    def test_perf_both_kernels_json(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_kernel.json"
        assert main(["perf", "--repeats", "1", "--output", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == "repro-tdm-perf/2"
        assert {"version", "git", "python"} <= set(doc["header"])
        by_kernel = {r["kernel"]: r for r in doc["reports"]}
        assert set(by_kernel) == {"bitmask", "set"}
        for report in by_kernel.values():
            assert report["connections"] == 4032
            for entry in report["schedulers"].values():
                assert entry["ops_per_sec"] > 0
                assert entry["repeats"] == 1
                assert entry["mean_seconds"] >= entry["seconds"]
        # Identical schedules: the kernels must agree on every degree.
        degrees = {
            k: {s: v["degree"] for s, v in r["schedulers"].items()}
            for k, r in by_kernel.items()
        }
        assert degrees["bitmask"] == degrees["set"]

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServiceCommands:
    def test_compile_with_cache_hits_second_time(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        spec = '{"pattern": "transpose", "width": 8}'
        assert main(["compile", "--spec", spec, "--cache", cache_dir]) == 0
        assert "cache miss" in capsys.readouterr().out
        assert main(["compile", "--spec", spec, "--cache", cache_dir]) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_compile_without_output_or_cache(self, capsys):
        assert main([
            "compile", "--spec", '{"pattern": "pairs", "pairs": [[0, 1]]}',
        ]) == 0
        assert "no cache" in capsys.readouterr().out

    def test_cachebench(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_cache.json"
        assert main(["cachebench", "--repeats", "1", "--output", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "warm speedup" in out
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == "repro-tdm-cache/2"
        assert {"version", "git", "python"} <= set(doc["header"])
        assert doc["report"]["speedup"] > 1.0
        assert doc["report"]["cache_stats"]["hits"] >= 2  # warm + translated

    def test_faults_with_cache(self, tmp_path, capsys):
        assert main([
            "faults", "--faults", "0", "--cache", str(tmp_path / "cache"),
        ]) == 0
        assert "artifact cache:" in capsys.readouterr().out

    def test_serve_client_roundtrip(self, tmp_path):
        # The CI smoke flow in-process: server on a unix socket, two
        # identical compiles, second must be a cache hit.
        import asyncio

        from repro.service.client import AsyncCompileClient
        from repro.service.server import CompileServer

        sock = str(tmp_path / "compile.sock")

        async def go():
            server = CompileServer(
                cache=str(tmp_path / "cache"), socket_path=sock
            )
            await server.start()
            try:
                async with AsyncCompileClient(socket_path=sock) as c:
                    first = await c.compile(
                        {"kind": "torus", "width": 8},
                        pattern={"pattern": "all-to-all", "nodes": 64},
                    )
                    second = await c.compile(
                        {"kind": "torus", "width": 8},
                        pattern={"pattern": "all-to-all", "nodes": 64},
                    )
                return first["cache"], second["cache"]
            finally:
                await server.shutdown()

        assert asyncio.run(go()) == ("miss", "hit")
