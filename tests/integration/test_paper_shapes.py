"""Integration tests: the paper's headline observations must hold.

These tests run the actual experiment drivers (at reduced sample counts)
and assert the *qualitative* results the paper reports -- who wins,
where the crossovers are, how improvements trend.  EXPERIMENTS.md
records the quantitative paper-vs-measured comparison.
"""

import pytest

from repro.analysis import experiments as exp
from repro.simulator.params import SimParams


@pytest.fixture(scope="module")
def table1_rows():
    return exp.table1(
        connection_counts=(100, 800, 2400, 4000), patterns_per_row=5, seed=0
    )


class TestTable1Shapes:
    def test_coloring_beats_greedy(self, table1_rows):
        """Paper: 'the coloring algorithm is always better than the
        greedy algorithm'."""
        for r in table1_rows:
            assert r["coloring"] <= r["greedy"]

    def test_aapc_wins_on_dense(self, table1_rows):
        """Paper: 'the AAPC algorithm is better than the other
        algorithms when the communication is dense'."""
        dense = table1_rows[-1]
        assert dense["aapc"] < dense["coloring"]
        assert dense["aapc"] == 64.0  # saturates at the AAPC bound

    def test_degree_monotone_in_density(self, table1_rows):
        degrees = [r["combined"] for r in table1_rows]
        assert degrees == sorted(degrees)

    def test_improvement_grows_when_dense(self, table1_rows):
        sparse = table1_rows[0]["improvement_pct"]
        dense = table1_rows[-1]["improvement_pct"]
        assert dense > sparse
        assert dense > 25.0  # paper: 43.1% at 4000 connections

    def test_magnitudes_near_paper(self, table1_rows):
        """Mean degrees within 15% of the paper's Table 1."""
        for r in table1_rows:
            paper = exp.PAPER_TABLE1[int(r["connections"])]
            for key, expected in zip(("greedy", "coloring", "aapc", "combined"), paper):
                assert r[key] == pytest.approx(expected, rel=0.15)


class TestTable3Shapes:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r["pattern"]: r for r in exp.table3(greedy_orders=5, seed=0)}

    def test_combined_matches_paper_exactly_for_most(self, rows):
        # ring, nearest neighbour, shuffle-exchange, all-to-all match the
        # paper's combined column exactly; hypercube lands within 1.
        assert rows["ring"]["combined"] == 2
        assert rows["nearest neighbour"]["combined"] == 4
        assert rows["shuffle-exchange"]["combined"] == 4
        assert rows["all-to-all"]["combined"] == 64
        assert abs(rows["hypercube"]["combined"] - 7) <= 1

    def test_greedy_mean_near_paper(self, rows):
        for name, (_, greedy, *_rest) in exp.PAPER_TABLE3.items():
            assert rows[name]["greedy"] == pytest.approx(greedy, rel=0.35)

    def test_all_to_all_improvement(self, rows):
        r = rows["all-to-all"]
        assert r["improvement_pct"] > 25  # paper: 43.8%


class TestTable5Shapes:
    @pytest.fixture(scope="class")
    def rows(self):
        return exp.table5(
            params=SimParams(),
            gs_grids=(64, 256),
            p3m_grids=(32,),
            degrees=(1, 2, 5, 10),
        )

    def test_compiled_always_wins(self, rows):
        for r in rows:
            best_dynamic = min(r[f"dynamic_{k}"] for k in (1, 2, 5, 10))
            assert r["compiled"] < best_dynamic

    def test_gap_is_at_least_2x(self, rows):
        """Paper: dynamic takes 2x-20x longer than compiled.  (GS 256 is
        the paper's own closest case at 2.02x; our slightly cheaper
        control model puts it at ~1.9x, hence the 1.8 threshold.)"""
        for r in rows:
            best_dynamic = min(r[f"dynamic_{k}"] for k in (1, 2, 5, 10))
            assert best_dynamic / r["compiled"] >= 1.8

    def test_no_universal_best_degree(self, rows):
        """Paper: 'multiplexing does not always improve the performance
        for dynamic communication' -- the best K differs by pattern."""
        best = set()
        for r in rows:
            values = {k: r[f"dynamic_{k}"] for k in (1, 2, 5, 10)}
            best.add(min(values, key=values.get))
        assert len(best) > 1

    def test_gs_prefers_low_degree(self, rows):
        gs = next(r for r in rows if r["pattern"] == "GS" and r["problem"] == "64 x 64")
        assert gs["dynamic_1"] <= gs["dynamic_10"]

    def test_dense_pattern_prefers_high_degree(self, rows):
        p3m2 = next(r for r in rows if r["pattern"] == "P3M 2")
        assert p3m2["dynamic_10"] < p3m2["dynamic_1"]

    def test_compiled_degree_adapts_per_pattern(self, rows):
        degrees = {r["compiled_degree"] for r in rows}
        assert len(degrees) > 2  # per-pattern multiplexing degrees differ
