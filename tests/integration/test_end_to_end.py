"""End-to-end integration: spec -> schedule -> codegen -> simulation."""

import pytest

from repro.compiler.program import CommPhase, compile_program
from repro.compiler.recognition import recognize
from repro.compiler.codegen import decode_registers
from repro.simulator.compiled import compiled_completion_time
from repro.simulator.dynamic import simulate_dynamic
from repro.simulator.metrics import summarize
from repro.simulator.params import SimParams


class TestFullPipeline:
    def test_spec_to_registers(self, torus8):
        """A compiler front-to-back pass: recognise the pattern, compile
        the program, and audit the emitted registers by tracing."""
        requests = recognize({"pattern": "stencil2d", "width": 8, "height": 8, "size": 32})
        program = compile_program(torus8, [CommPhase("stencil", requests)])
        phase = program.phases[0]
        traced = decode_registers(phase.registers)
        all_traced = set().union(*traced)
        assert all_traced == set(requests.pairs)

    def test_program_vs_dynamic(self, torus8):
        """The whole point of the paper: the compiled program's
        communication time beats every dynamic configuration."""
        params = SimParams()
        requests = recognize({"pattern": "hypercube", "nodes": 64, "size": 8})
        program = compile_program(torus8, [CommPhase("fft", requests)])
        compiled_time = program.communication_time(params)
        for degree in (1, 2, 5, 10):
            assert compiled_time < simulate_dynamic(
                torus8, requests, degree, params
            ).completion_time

    def test_multi_phase_program(self, torus8):
        params = SimParams()
        phases = [
            CommPhase("boundary", recognize({"pattern": "ring", "nodes": 64, "size": 64})),
            CommPhase("reduce", recognize({"pattern": "hypercube", "nodes": 64, "size": 8})),
            CommPhase(
                "redistribute",
                recognize({
                    "pattern": "redistribution",
                    "extents": [64, 64, 64],
                    "source": [[4, 16], [4, 16], [4, 16]],
                    "target": [[1, 1], [1, 1], [64, 1]],
                }),
            ),
        ]
        program = compile_program(torus8, phases)
        degrees = program.degrees()
        # Per-phase adaptation: three different multiplexing degrees.
        assert degrees["boundary"] == 2
        assert degrees["reduce"] in (7, 8)
        assert degrees["redistribute"] > 10
        assert program.communication_time(params) == sum(
            p.makespan(params) for p in program.phases
        )

    def test_summaries_from_both_simulators(self, torus8):
        params = SimParams()
        requests = recognize({"pattern": "ring", "nodes": 64, "size": 16})
        comp = compiled_completion_time(torus8, requests, params)
        dyn = simulate_dynamic(torus8, requests, 2, params)
        s_comp = summarize(comp.messages)
        s_dyn = summarize(dyn.messages)
        assert s_comp["makespan"] < s_dyn["makespan"]
        assert s_dyn["establish_mean"] > 0


class TestCLI:
    def test_cli_fig3(self, capsys):
        from repro.cli import main

        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "3" in out and "2" in out

    def test_cli_table3(self, capsys):
        from repro.cli import main

        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "all-to-all" in out

    def test_cli_aapc(self, capsys):
        from repro.cli import main

        assert main(["aapc", "--width", "4", "--height", "4"]) == 0
        assert "phases" in capsys.readouterr().out

    def test_cli_schedule_spec(self, capsys):
        from repro.cli import main

        assert main(["schedule", "--spec", '{"pattern": "ring", "nodes": 64}']) == 0
        out = capsys.readouterr().out
        assert "combined" in out
