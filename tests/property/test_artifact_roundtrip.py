"""Artifact round-trip properties: every topology x every scheduler.

``save_artifact``/``load_artifact`` is the trust boundary of the whole
compile-once story (and of the service cache built on the same
serialisation), so the round trip is exercised over the full registry
on every topology family, plus tampered-file rejection.
"""

import json

import pytest

from repro.compiler.codegen import decode_registers
from repro.compiler.serialize import (
    ArtifactError,
    load_artifact,
    save_artifact,
)
from repro.core.paths import route_requests
from repro.core.registry import get_scheduler, scheduler_names
from repro.core.requests import RequestSet
from repro.topology.kary_ncube import KAryNCube
from repro.topology.linear import LinearArray
from repro.topology.mesh import Mesh2D
from repro.topology.omega import OmegaNetwork
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D

#: Topologies whose per-node crossbar model supports register codegen
#: (the full ``save_artifact`` document).
TOPOLOGIES = {
    "torus": Torus2D(4),
    "mesh": Mesh2D(4),
    "ring": Ring(8),
    "linear": LinearArray(5),
    "kary3": KAryNCube([2, 2, 2]),
}

#: The omega network schedules fine but its transit fibers belong to
#: stage switches, not nodes, so only the schedule document round-trips.
OMEGA = OmegaNetwork(8)


def neighbour_requests(topo) -> RequestSet:
    """A routable one-hop-ish permutation: i -> i+1 (mod n)."""
    n = topo.num_nodes
    return RequestSet.from_pairs([(i, (i + 1) % n) for i in range(n)])


def compiled(topo, scheduler):
    requests = neighbour_requests(topo)
    connections = route_requests(topo, requests)
    schedule = get_scheduler(scheduler)(connections, topo)
    schedule.validate(connections)
    return schedule


class TestRoundTripMatrix:
    @pytest.mark.parametrize("topo_name", list(TOPOLOGIES))
    @pytest.mark.parametrize("scheduler", scheduler_names())
    def test_save_load_roundtrip(self, tmp_path, topo_name, scheduler):
        topo = TOPOLOGIES[topo_name]
        schedule = compiled(topo, scheduler)
        path = tmp_path / "artifact.json"
        save_artifact(path, topo, schedule, name=f"{topo_name}/{scheduler}")
        loaded, regs = load_artifact(path, topo)
        assert loaded.degree == schedule.degree
        assert [
            {c.pair for c in cfg} for cfg in loaded
        ] == [
            {c.pair for c in cfg} for cfg in schedule
        ]
        # The register image realises exactly the declared circuits.
        assert decode_registers(regs) == [
            {c.pair for c in cfg} for cfg in schedule
        ]

    @pytest.mark.parametrize("scheduler", scheduler_names())
    def test_omega_schedule_roundtrip(self, scheduler):
        from repro.compiler.serialize import schedule_from_dict, schedule_to_dict

        schedule = compiled(OMEGA, scheduler)
        loaded, conns = schedule_from_dict(OMEGA, schedule_to_dict(schedule))
        loaded.validate(conns)
        assert loaded.degree == schedule.degree

    @pytest.mark.parametrize("topo_name", list(TOPOLOGIES))
    def test_file_bytes_deterministic(self, tmp_path, topo_name):
        topo = TOPOLOGIES[topo_name]
        schedule = compiled(topo, "coloring")
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_artifact(a, topo, schedule)
        save_artifact(b, topo, schedule)
        assert a.read_bytes() == b.read_bytes()


class TestTamperRejection:
    @pytest.fixture()
    def artifact(self, tmp_path):
        topo = TOPOLOGIES["torus"]
        schedule = compiled(topo, "combined")
        path = tmp_path / "artifact.json"
        save_artifact(path, topo, schedule)
        return topo, path

    def test_wrong_topology_rejected(self, artifact):
        _, path = artifact
        with pytest.raises(ArtifactError, match="built for"):
            load_artifact(path, Torus2D(8))

    def test_redirected_connection_rejected(self, artifact):
        topo, path = artifact
        doc = json.loads(path.read_text())
        entry = doc["schedule"]["slots"][0][0]
        entry["dst"] = (entry["dst"] + 1) % topo.num_nodes
        path.write_text(json.dumps(doc))
        with pytest.raises(ArtifactError):
            load_artifact(path, topo)

    def test_tampered_register_word_rejected(self, artifact):
        topo, path = artifact
        doc = json.loads(path.read_text())
        words = doc["registers"]["words"]
        node = next(iter(words))
        word = words[node][0]
        # Swap the first two output assignments of one switch word.
        word[0], word[1] = word[1], word[0]
        path.write_text(json.dumps(doc))
        with pytest.raises(ArtifactError):
            load_artifact(path, topo)

    def test_dropped_connection_rejected(self, artifact):
        # Removing one declared circuit leaves the register image
        # realising a connection the schedule no longer admits to.
        topo, path = artifact
        doc = json.loads(path.read_text())
        doc["schedule"]["slots"][0] = doc["schedule"]["slots"][0][1:]
        path.write_text(json.dumps(doc))
        with pytest.raises(ArtifactError):
            load_artifact(path, topo)
