"""Property-based tests for the extension subsystems."""

from hypothesis import given, settings, strategies as st

from repro.core.combined import combined_schedule
from repro.core.greedy import greedy_schedule
from repro.core.paths import route_requests
from repro.core.requests import Request, RequestSet
from repro.core.weighted import WeightedSchedule, simulate_weighted, weighted_schedule
from repro.topology.faults import FaultyTopology
from repro.topology.omega import OmegaNetwork
from repro.topology.torus import Torus2D

TORUS = Torus2D(4)


@st.composite
def sized_request_sets(draw, max_requests: int = 15):
    n = TORUS.num_nodes
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda p: p[0] != p[1]
            ),
            min_size=1,
            max_size=max_requests,
            unique=True,
        )
    )
    sizes = draw(st.lists(st.integers(1, 100), min_size=len(pairs), max_size=len(pairs)))
    return RequestSet([Request(s, d, size=z) for (s, d), z in zip(pairs, sizes)])


class TestWeightedProperties:
    @given(sized_request_sets())
    @settings(max_examples=60, deadline=None)
    def test_weighted_never_slower_than_flat(self, rs):
        conns = route_requests(TORUS, rs)
        base = greedy_schedule(conns)
        flat = simulate_weighted(
            WeightedSchedule(base=base, frame=list(range(base.degree)))
        )
        weighted = simulate_weighted(weighted_schedule(base))
        assert weighted <= flat

    @given(sized_request_sets())
    @settings(max_examples=60, deadline=None)
    def test_weighted_valid_and_complete(self, rs):
        conns = route_requests(TORUS, rs)
        base = greedy_schedule(conns)
        weighted = weighted_schedule(base)
        weighted.validate(conns)
        assert weighted.frame_length <= 4 * base.degree


class TestFaultProperties:
    @given(
        st.integers(0, Torus2D(4).num_transit_links - 1),
        st.integers(0, 15),
        st.integers(0, 15),
    )
    @settings(max_examples=150, deadline=None)
    def test_single_failure_never_disconnects(self, offset, s, d):
        """One fiber cut on a 4x4 torus leaves every pair routable with
        a path avoiding the cut."""
        if s == d:
            return
        faulty = FaultyTopology(Torus2D(4))
        link = faulty.transit_link_base + offset
        faulty.fail_link(link)
        path = faulty.route(s, d)
        assert link not in path
        infos = [faulty.link_info(l) for l in path]
        assert infos[0].src == s and infos[-1].dst == d
        for a, b in zip(infos, infos[1:]):
            assert a.dst == b.src

    @given(st.sets(st.integers(0, Torus2D(4).num_transit_links - 1),
                   min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_schedules_avoid_failed_fibers(self, offsets):
        from hypothesis import assume

        from repro.topology.base import RoutingError

        faulty = FaultyTopology(Torus2D(4))
        for off in offsets:
            faulty.fail_link(faulty.transit_link_base + off)
        rs = RequestSet.from_pairs([(i, (i + 5) % 16) for i in range(16)])
        try:
            conns = route_requests(faulty, rs)
        except RoutingError:
            # Cutting all fibers out of one switch legitimately
            # disconnects it; that case is covered by its own test.
            assume(False)
        schedule = combined_schedule(conns, faulty)
        schedule.validate(conns)
        for c in conns:
            assert faulty.failed_links.isdisjoint(c.link_set)


class TestOmegaProperties:
    @given(st.sampled_from([4, 8, 16, 32]), st.data())
    @settings(max_examples=100, deadline=None)
    def test_route_chain_and_length(self, n, data):
        om = OmegaNetwork(n)
        s = data.draw(st.integers(0, n - 1))
        d = data.draw(st.integers(0, n - 1).filter(lambda x: x != s))
        path = om.route(s, d)
        assert len(path) == om.bits + 2
        assert len(set(path)) == len(path)

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_permutation_loads_are_balanced(self, data):
        """Any permutation loads each stage wire at most ... n times is
        trivial; the sharper invariant: total wire hops = n * stages."""
        n = 16
        om = OmegaNetwork(n)
        perm = data.draw(st.permutations(range(n)))
        pairs = [(i, p) for i, p in enumerate(perm) if i != p]
        if not pairs:
            return
        conns = route_requests(om, RequestSet.from_pairs(pairs))
        from repro.core.conflicts import link_load

        transit_hops = sum(
            load for link, load in link_load(conns).items()
            if link >= om.transit_link_base
        )
        assert transit_hops == len(pairs) * om.bits


class TestSerializationProperties:
    @given(sized_request_sets())
    @settings(max_examples=40, deadline=None)
    def test_schedule_roundtrip_identity(self, rs):
        from repro.compiler.serialize import schedule_from_dict, schedule_to_dict

        conns = route_requests(TORUS, rs)
        schedule = greedy_schedule(conns)
        loaded, _ = schedule_from_dict(TORUS, schedule_to_dict(schedule))
        assert loaded.degree == schedule.degree
        assert [
            sorted(c.pair for c in cfg) for cfg in loaded
        ] == [
            sorted(c.pair for c in cfg) for cfg in schedule
        ]

    @given(sized_request_sets())
    @settings(max_examples=30, deadline=None)
    def test_codegen_trace_identity(self, rs):
        from repro.compiler.codegen import decode_registers, generate_registers

        conns = route_requests(TORUS, rs)
        schedule = greedy_schedule(conns)
        traced = decode_registers(generate_registers(TORUS, schedule))
        assert traced == [{c.pair for c in cfg} for cfg in schedule]


class TestDynamicNetworkInvariants:
    @given(sized_request_sets(), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_network_clean_after_drain(self, rs, degree):
        """After every message delivers and releases, no channel may
        remain owned or locked -- leaks would starve later traffic."""
        from repro.simulator.dynamic.control import _DynamicSimulator
        from repro.simulator.params import SimParams

        sim = _DynamicSimulator(TORUS, rs, degree, SimParams())
        sim.run()
        # Drain the trailing REL events.
        while sim.events:
            time, _, kind, payload = __import__("heapq").heappop(sim.events)
            if kind == "rel":
                sim._on_rel(time, *payload)
        assert sim.net.occupied_channels() == 0
        for state in sim.net._links.values():
            assert all(l == -1 for l in state.lock)
