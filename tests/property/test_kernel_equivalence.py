"""Kernel equivalence: the bitmask and set kernels are interchangeable.

The entire contract of :mod:`repro.core.linkmask` is that switching
``kernel="set"`` to ``kernel="bitmask"`` only ever changes speed -- the
resulting :class:`ConfigurationSet` must be *identical*, configuration
by configuration and member by member, for every scheduler entry point
and every workload.  These properties pin that contract on random
patterns, random array redistributions, and the paper's classic
patterns across torus, mesh and ring substrates.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aapc_ordered import aapc_rank_order, ordered_aapc_schedule
from repro.core.coloring import coloring_schedule
from repro.core.combined import combined_schedule
from repro.core.greedy import greedy_schedule
from repro.core.packing import first_fit, repack
from repro.core.paths import route_requests
from repro.core.requests import RequestSet
from repro.patterns.classic import (
    all_to_all_pattern,
    hypercube_pattern,
    ring_pattern,
    shuffle_exchange_pattern,
    transpose_pattern,
)
from repro.patterns.redistribution import (
    random_distribution,
    redistribution_requests,
)
from repro.topology.mesh import Mesh2D
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D

TOPOLOGIES = {
    "torus": Torus2D(4),
    "mesh": Mesh2D(4),
    "ring": Ring(16),
}


def as_slots(schedule):
    """A schedule as nested pair lists -- the identity we compare."""
    return [[c.pair for c in cfg] for cfg in schedule]


@st.composite
def routed_connections(draw, max_requests: int = 40, unique: bool = True):
    topo = TOPOLOGIES[draw(st.sampled_from(sorted(TOPOLOGIES)))]
    n = topo.num_nodes
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda p: p[0] != p[1]
            ),
            min_size=1,
            max_size=max_requests,
            unique=unique,
        )
    )
    return topo, route_requests(
        topo, RequestSet.from_pairs(pairs, allow_duplicates=not unique)
    )


class TestKernelEquivalence:
    @given(routed_connections())
    @settings(max_examples=120, deadline=None)
    def test_first_fit(self, tc):
        _, conns = tc
        assert as_slots(first_fit(conns, kernel="bitmask")) == as_slots(
            first_fit(conns, kernel="set")
        )

    @given(routed_connections(), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_first_fit_shuffled_order(self, tc, rnd):
        _, conns = tc
        order = list(range(len(conns)))
        rnd.shuffle(order)
        assert as_slots(first_fit(conns, order, kernel="bitmask")) == as_slots(
            first_fit(conns, order, kernel="set")
        )

    @given(routed_connections())
    @settings(max_examples=80, deadline=None)
    def test_first_fit_singleton_runs(self, tc):
        # every run of length 1 is trivially link-disjoint, so the
        # batched path must agree with both sequential kernels
        _, conns = tc
        batched = first_fit(conns, kernel="bitmask", runs=[1] * len(conns))
        assert as_slots(batched) == as_slots(first_fit(conns, kernel="set"))

    @given(routed_connections(unique=False))
    @settings(max_examples=60, deadline=None)
    def test_first_fit_aapc_runs(self, tc):
        # real AAPC phase blocks (duplicates allowed -- repeated pairs
        # must split into disjoint runs): run-batched placement is
        # byte-identical to the sequential set kernel on the same order
        topo, conns = tc
        from repro.aapc.phases import aapc_phase_map

        order, runs = aapc_rank_order(
            conns, aapc_phase_map(topo), with_runs=True
        )
        batched = first_fit(
            conns, order, kernel="bitmask", runs=runs,
            num_links=topo.num_links,
        )
        assert as_slots(batched) == as_slots(
            first_fit(conns, order, kernel="set")
        )

    @given(routed_connections(unique=False))
    @settings(max_examples=60, deadline=None)
    def test_ordered_aapc(self, tc):
        # end to end: the scheduler entry point that feeds the runs hint
        topo, conns = tc
        assert as_slots(
            ordered_aapc_schedule(conns, topo, kernel="bitmask")
        ) == as_slots(ordered_aapc_schedule(conns, topo, kernel="set"))

    @given(routed_connections())
    @settings(max_examples=100, deadline=None)
    def test_greedy(self, tc):
        _, conns = tc
        assert as_slots(greedy_schedule(conns, kernel="bitmask")) == as_slots(
            greedy_schedule(conns, kernel="set")
        )

    @given(routed_connections(), st.sampled_from(["most-constrained", "paper-ratio"]))
    @settings(max_examples=120, deadline=None)
    def test_coloring(self, tc, priority):
        _, conns = tc
        assert as_slots(
            coloring_schedule(conns, priority=priority, kernel="bitmask")
        ) == as_slots(coloring_schedule(conns, priority=priority, kernel="set"))

    @given(routed_connections())
    @settings(max_examples=60, deadline=None)
    def test_repack(self, tc):
        _, conns = tc
        # repack mutates its input, so give each kernel its own copy of
        # the same (kernel-independent, already proven above) schedule.
        a = repack(first_fit(conns, kernel="set"), kernel="bitmask")
        b = repack(first_fit(conns, kernel="set"), kernel="set")
        assert as_slots(a) == as_slots(b)

    @given(routed_connections())
    @settings(max_examples=40, deadline=None)
    def test_combined(self, tc):
        topo, conns = tc
        assert as_slots(combined_schedule(conns, topo, kernel="bitmask")) == as_slots(
            combined_schedule(conns, topo, kernel="set")
        )


class TestKernelEquivalenceRedistributions:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_redistribution_coloring_and_first_fit(self, seed):
        src = random_distribution((16, 16), 16, seed=seed)
        dst = random_distribution((16, 16), 16, seed=seed + 1)
        requests = redistribution_requests(src, dst)
        if not requests:
            return
        conns = route_requests(TOPOLOGIES["torus"], requests)
        assert as_slots(coloring_schedule(conns, kernel="bitmask")) == as_slots(
            coloring_schedule(conns, kernel="set")
        )
        assert as_slots(first_fit(conns, kernel="bitmask")) == as_slots(
            first_fit(conns, kernel="set")
        )


CLASSIC_PATTERNS = {
    "ring": lambda n: ring_pattern(n),
    "all-to-all": lambda n: all_to_all_pattern(n),
    "hypercube": lambda n: hypercube_pattern(n),
    "shuffle": lambda n: shuffle_exchange_pattern(n),
    "transpose": lambda n: transpose_pattern(int(round(n ** 0.5))),
}


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("pattern_name", sorted(CLASSIC_PATTERNS))
def test_classic_patterns_identical(topo_name, pattern_name):
    topo = TOPOLOGIES[topo_name]
    conns = route_requests(topo, CLASSIC_PATTERNS[pattern_name](topo.num_nodes))
    for schedule in (
        lambda k: first_fit(conns, kernel=k),
        lambda k: coloring_schedule(conns, kernel=k),
        lambda k: repack(first_fit(conns, kernel="set"), kernel=k),
    ):
        assert as_slots(schedule("bitmask")) == as_slots(schedule("set"))
