"""Property-based tests for topologies and routing."""

from hypothesis import given, settings, strategies as st

from repro.topology.kary_ncube import KAryNCube, TieBreak
from repro.topology.linear import LinearArray
from repro.topology.links import LinkKind


dims_strategy = st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=3).filter(
    lambda d: 2 <= __import__("math").prod(d) <= 128
)


@st.composite
def cube_and_pair(draw):
    dims = draw(dims_strategy)
    tie = draw(st.sampled_from(list(TieBreak)))
    cube = KAryNCube(dims, tie_break=tie)
    s = draw(st.integers(0, cube.num_nodes - 1))
    d = draw(st.integers(0, cube.num_nodes - 1).filter(lambda x: x != s))
    return cube, s, d


class TestRouteInvariants:
    @given(cube_and_pair())
    @settings(max_examples=200, deadline=None)
    def test_route_is_a_chain(self, case):
        """Routes start at the source PE, end at the destination PE,
        and every consecutive link pair shares a switch."""
        cube, s, d = case
        infos = [cube.link_info(l) for l in cube.route(s, d)]
        assert infos[0].kind is LinkKind.INJECT and infos[0].src == s
        assert infos[-1].kind is LinkKind.EJECT and infos[-1].dst == d
        for a, b in zip(infos, infos[1:]):
            assert a.dst == b.src

    @given(cube_and_pair())
    @settings(max_examples=200, deadline=None)
    def test_route_never_repeats_a_link(self, case):
        cube, s, d = case
        path = cube.route(s, d)
        assert len(set(path)) == len(path)

    @given(cube_and_pair())
    @settings(max_examples=200, deadline=None)
    def test_route_is_shortest_possible(self, case):
        """Transit hops equal the sum of per-dimension ring distances
        (dimension-order routing never detours)."""
        cube, s, d = case
        sc, dc = cube.coords(s), cube.coords(d)
        minimal = sum(
            min((b - a) % k, (a - b) % k)
            for a, b, k in zip(sc, dc, cube.dims)
        )
        assert len(cube.route(s, d)) - 2 == minimal

    @given(cube_and_pair())
    @settings(max_examples=100, deadline=None)
    def test_route_deterministic(self, case):
        cube, s, d = case
        assert cube.route(s, d) == cube.route(s, d)

    @given(st.integers(2, 30), st.data())
    @settings(max_examples=100, deadline=None)
    def test_linear_array_routes(self, n, data):
        lin = LinearArray(n)
        s = data.draw(st.integers(0, n - 1))
        d = data.draw(st.integers(0, n - 1).filter(lambda x: x != s))
        path = lin.route(s, d)
        assert len(path) == abs(s - d) + 2

    @given(cube_and_pair())
    @settings(max_examples=100, deadline=None)
    def test_link_info_total(self, case):
        """Every link id decodes, and ids partition into the three kinds
        with the expected counts."""
        cube, _, _ = case
        kinds = [cube.link_info(l).kind for l in cube.iter_links()]
        assert kinds.count(LinkKind.INJECT) == cube.num_nodes
        assert kinds.count(LinkKind.EJECT) == cube.num_nodes
        assert kinds.count(LinkKind.TRANSIT) == cube.num_transit_links
