"""Property-based tests for block-cyclic redistribution arithmetic."""

import itertools
import math

from hypothesis import given, settings, strategies as st

from repro.patterns.redistribution import (
    BlockCyclic,
    Distribution,
    redistribution_pairs,
)


@st.composite
def distribution_pairs(draw):
    """Two random distributions of the same small 2-D array."""
    extents = tuple(
        draw(st.integers(2, 12)) for _ in range(draw(st.integers(1, 3)))
    )

    def dist():
        dims = []
        for e in extents:
            p = draw(st.integers(1, e))
            b = draw(st.integers(1, max(e // p, 1)))
            dims.append(BlockCyclic(p, b))
        return Distribution(extents, tuple(dims))

    return dist(), dist()


class TestAgainstBruteForce:
    @given(distribution_pairs())
    @settings(max_examples=100, deadline=None)
    def test_pairs_match_elementwise_walk(self, case):
        src, dst = case
        expected: dict[tuple[int, int], int] = {}
        for index in itertools.product(*(range(e) for e in src.extents)):
            a, b = src.owner(index), dst.owner(index)
            if a != b:
                expected[(a, b)] = expected.get((a, b), 0) + 1
        assert redistribution_pairs(src, dst) == expected

    @given(distribution_pairs())
    @settings(max_examples=100, deadline=None)
    def test_conservation(self, case):
        """Moved + stationary elements = array volume."""
        src, dst = case
        moved = sum(redistribution_pairs(src, dst).values())
        stayed = sum(
            1
            for index in itertools.product(*(range(e) for e in src.extents))
            if src.owner(index) == dst.owner(index)
        )
        assert moved + stayed == math.prod(src.extents)

    @given(distribution_pairs())
    @settings(max_examples=100, deadline=None)
    def test_pe_ids_in_range(self, case):
        src, dst = case
        for (a, b), count in redistribution_pairs(src, dst).items():
            assert 0 <= a < src.num_pes
            assert 0 <= b < dst.num_pes
            assert count >= 1

    @given(distribution_pairs())
    @settings(max_examples=50, deadline=None)
    def test_identity_is_empty(self, case):
        src, _ = case
        assert redistribution_pairs(src, src) == {}
