"""Property-based tests for runtime fault injection.

Whatever fiber cuts and repairs a run suffers, two invariants must
hold at drain time:

* **Clean network** -- no (link, slot) channel is still locked or
  owned once the event queue empties (no orphaned circuits).
* **Conservation** -- every message is accounted for exactly once:
  delivered or declared lost, never both, never neither.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.requests import RequestSet
from repro.simulator.compiled import simulate_compiled_faulty
from repro.simulator.dynamic.control import _DynamicSimulator
from repro.simulator.faults import random_fault_schedule
from repro.simulator.params import SimParams
from repro.topology.torus import Torus2D

TORUS = Torus2D(4)
PARAMS = SimParams(retry_backoff=8, fault_retry_limit=8)


@st.composite
def fault_scenarios(draw):
    n = TORUS.num_nodes
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda p: p[0] != p[1]
            ),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    size = draw(st.integers(1, 12))
    num_faults = draw(st.integers(0, 3))
    horizon = draw(st.integers(1, 300))
    repair_after = draw(st.one_of(st.none(), st.integers(1, 100)))
    seed = draw(st.integers(0, 2**16))
    requests = RequestSet.from_pairs(pairs, size=size)
    faults = random_fault_schedule(
        TORUS, num_faults, horizon, repair_after=repair_after, seed=seed
    )
    return requests, faults


class TestDynamicFaultProperties:
    @given(fault_scenarios(), st.sampled_from(["dropping", "holding"]))
    @settings(max_examples=25, deadline=None)
    def test_network_drains_clean(self, scenario, protocol):
        requests, faults = scenario
        sim = _DynamicSimulator(
            TORUS, requests, 2, PARAMS, protocol=protocol, faults=faults
        )
        sim.run()
        assert sim.net.orphans() == []

    @given(fault_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_messages_conserved(self, scenario):
        requests, faults = scenario
        sim = _DynamicSimulator(TORUS, requests, 2, PARAMS, faults=faults)
        sim.run()
        for m in sim.messages:
            assert (m.delivered is None) or (m.lost is None)
        delivered = sum(1 for m in sim.messages if m.delivered is not None)
        lost = sum(1 for m in sim.messages if m.lost is not None)
        assert delivered + lost == len(sim.messages)
        assert delivered == sim.delivered_count
        assert lost == sim.lost_count


class TestCompiledFaultProperties:
    @given(fault_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_messages_conserved(self, scenario):
        requests, faults = scenario
        result = simulate_compiled_faulty(TORUS, requests, faults, PARAMS)
        for m in result.messages:
            assert (m.delivered is None) or (m.lost is None)
        delivered = sum(
            1 for m in result.messages if m.delivered is not None
        )
        lost = sum(1 for m in result.messages if m.lost is not None)
        assert delivered + lost == len(result.messages)
        assert lost == result.lost
        assert result.completion_time >= PARAMS.compiled_startup
        if delivered:
            assert result.completion_time == max(
                m.delivered for m in result.messages if m.delivered is not None
            )

    @given(fault_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_caller_topology_untouched(self, scenario):
        requests, faults = scenario
        simulate_compiled_faulty(TORUS, requests, faults, PARAMS)
        # The simulator must degrade a private copy, never the input.
        assert not hasattr(TORUS, "failed_links")
