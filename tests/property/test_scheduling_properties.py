"""Property-based tests for the connection schedulers."""

from hypothesis import given, settings, strategies as st

from repro.core.bounds import max_link_load_bound
from repro.core.coloring import coloring_schedule
from repro.core.greedy import greedy_schedule
from repro.core.packing import first_fit, repack
from repro.core.paths import route_requests
from repro.core.requests import Request, RequestSet
from repro.topology.torus import Torus2D

TORUS = Torus2D(4)  # small instance: properties must hold regardless of size


@st.composite
def request_sets(draw, max_requests: int = 40):
    n = TORUS.num_nodes
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda p: p[0] != p[1]
            ),
            min_size=1,
            max_size=max_requests,
            unique=True,
        )
    )
    return RequestSet.from_pairs(pairs)


class TestSchedulerInvariants:
    @given(request_sets())
    @settings(max_examples=150, deadline=None)
    def test_greedy_valid_and_bounded(self, rs):
        conns = route_requests(TORUS, rs)
        schedule = greedy_schedule(conns)
        schedule.validate(conns)
        assert max_link_load_bound(conns) <= schedule.degree <= len(conns)

    @given(request_sets())
    @settings(max_examples=150, deadline=None)
    def test_coloring_valid_and_bounded(self, rs):
        conns = route_requests(TORUS, rs)
        schedule = coloring_schedule(conns)
        schedule.validate(conns)
        assert max_link_load_bound(conns) <= schedule.degree <= len(conns)

    @given(request_sets(), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_any_order_covers_everything(self, rs, rnd):
        conns = route_requests(TORUS, rs)
        order = list(range(len(conns)))
        rnd.shuffle(order)
        schedule = first_fit(conns, order)
        schedule.validate(conns)

    @given(request_sets())
    @settings(max_examples=75, deadline=None)
    def test_repack_never_increases_degree(self, rs):
        conns = route_requests(TORUS, rs)
        schedule = first_fit(conns)
        before = schedule.degree
        packed = repack(schedule)
        packed.validate(conns)
        assert packed.degree <= before

    @given(request_sets())
    @settings(max_examples=75, deadline=None)
    def test_slot_map_total_and_unique(self, rs):
        conns = route_requests(TORUS, rs)
        slots = greedy_schedule(conns).slot_map()
        assert sorted(slots) == list(range(len(conns)))

    @given(request_sets())
    @settings(max_examples=50, deadline=None)
    def test_first_configuration_is_maximal(self, rs):
        """Greedy's first configuration is maximal: no unscheduled-to-
        slot-0 connection could have been added to it."""
        conns = route_requests(TORUS, rs)
        schedule = greedy_schedule(conns)
        first = schedule[0]
        for cfg in list(schedule)[1:]:
            for c in cfg:
                assert not first.fits(c)


class TestDuplicateRequests:
    @given(st.integers(2, 10))
    @settings(max_examples=30, deadline=None)
    def test_duplicates_get_distinct_slots(self, copies):
        """k identical requests need exactly k slots (they all share the
        whole path)."""
        rs = RequestSet(
            [Request(0, 1, tag=i) for i in range(copies)], allow_duplicates=True
        )
        conns = route_requests(TORUS, rs)
        assert greedy_schedule(conns).degree == copies
