"""Hypothesis suites for delta scheduling and repack.

Two invariants carry the incremental path:

* after *any* sequence of add/remove updates the live schedule still
  validates, and its degree never exceeds the full-recompile (first-fit)
  degree by more than the engine's certified packing gap plus the
  policy's ``recompile_slack`` -- the provable form of the "bounded
  drift" guarantee (see :mod:`repro.core.delta`);
* ``repack``'s incremental position map is an optimisation, not a
  behaviour change: its output is byte-identical to a straightforward
  reference implementation that re-derives every victim position with
  the O(K) ``configs.index`` scan it replaced.
"""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.serialize import canonical_dumps, schedule_to_dict
from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.delta import DEFAULT_POLICY, DeltaScheduler, amend_schedule
from repro.core.packing import first_fit, repack
from repro.core.paths import Connection, route_requests
from repro.core.requests import Request, RequestSet
from repro.topology.torus import Torus2D

TORUS = Torus2D(4)
N = TORUS.num_nodes

pairs = st.tuples(
    st.integers(min_value=0, max_value=N - 1),
    st.integers(min_value=0, max_value=N - 1),
).filter(lambda p: p[0] != p[1])

#: One op: add a (src, dst) connection, or remove the k-th live index.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), pairs),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=10 ** 6)),
    ),
    max_size=25,
)

initial_patterns = st.lists(pairs, min_size=1, max_size=20, unique=True)


def build_engine(pattern):
    conns = route_requests(TORUS, RequestSet.from_pairs(pattern))
    return DeltaScheduler(first_fit(conns), num_links=TORUS.num_links)


class TestAmendInvariants:
    @settings(max_examples=60, deadline=None)
    @given(pattern=initial_patterns, sequence=ops)
    def test_validity_and_bounded_drift(self, pattern, sequence):
        engine = build_engine(pattern)
        next_index = engine.num_connections
        for op, payload in sequence:
            if op == "remove":
                live = sorted(c.index for c in engine.connections())
                if not live:
                    continue
                res = engine.amend(remove=[live[payload % len(live)]])
            else:
                src, dst = payload
                conn = Connection(
                    next_index, Request(src, dst), TORUS.route(src, dst)
                )
                next_index += 1
                res = engine.amend(add=[conn])
            # 1. The live schedule always validates against the live set.
            engine.schedule.validate(engine.connections())
            # 2. Bounded drift: K never exceeds what a full recompile
            # would give by more than certified gap + recompile slack.
            full = first_fit(engine.connections(), num_links=TORUS.num_links)
            assert res.degree <= (
                full.degree
                + engine.certified_gap
                + DEFAULT_POLICY.recompile_slack
            )
            # 3. A local repair opens at most max_delta_k fresh slots.
            if res.action != "recompile":
                assert res.delta_k <= DEFAULT_POLICY.max_delta_k

    @settings(max_examples=40, deadline=None)
    @given(pattern=initial_patterns, sequence=ops)
    def test_engine_matches_mirror_of_live_connections(self, pattern, sequence):
        """The engine's connection view is exactly the applied updates."""
        engine = build_engine(pattern)
        mirror = {c.index: c for c in engine.connections()}
        next_index = len(mirror)
        for op, payload in sequence:
            if op == "remove":
                if not mirror:
                    continue
                victim = sorted(mirror)[payload % len(mirror)]
                del mirror[victim]
                engine.amend(remove=[victim])
            else:
                src, dst = payload
                conn = Connection(
                    next_index, Request(src, dst), TORUS.route(src, dst)
                )
                mirror[next_index] = conn
                next_index += 1
                engine.amend(add=[conn])
            assert {c.index for c in engine.connections()} == set(mirror)
            assert engine.num_connections == len(mirror)

    @settings(max_examples=40, deadline=None)
    @given(pattern=initial_patterns, update=st.tuples(pairs, pairs))
    def test_amend_schedule_copy_on_write(self, pattern, update):
        conns = route_requests(TORUS, RequestSet.from_pairs(pattern))
        schedule = first_fit(conns)
        snapshot = canonical_dumps(schedule_to_dict(schedule))
        add = [
            Connection(
                len(conns) + i, Request(s, d), TORUS.route(s, d)
            )
            for i, (s, d) in enumerate(update)
        ]
        res = amend_schedule(schedule, add=add, remove=[conns[0].index])
        res.schedule.validate(
            [c for c in conns[1:]] + add
        )
        assert canonical_dumps(schedule_to_dict(schedule)) == snapshot


def reference_repack(schedule):
    """The pre-optimisation repack: identical algorithm, but every
    victim position re-derived with the O(K) ``configs.index`` scan the
    incremental position map replaced.  Receiver choice mirrors the set
    dissolver (first fitting configuration in slot order)."""
    configs = [cfg.clone() for cfg in schedule if len(cfg) > 0]
    rank = {id(cfg): pos for pos, cfg in enumerate(configs)}
    key = lambda cfg: (len(cfg), rank[id(cfg)])  # noqa: E731
    ordered = sorted(configs, key=key)
    progress = True
    while progress and len(configs) > 1:
        progress = False
        for victim in ordered:
            victim_pos = configs.index(victim)
            original = list(victim.connections)
            moves = []
            dissolved = True
            for c in original:
                for cfg in configs:
                    if cfg is not victim and cfg.fits(c):
                        victim.remove(c)
                        cfg.add(c)
                        moves.append((c, cfg))
                        break
                else:
                    for moved, cfg in moves:
                        cfg.remove(moved)
                        victim.used_links |= moved.link_set
                    victim.connections[:] = original
                    dissolved = False
                    break
            if dissolved:
                configs.pop(victim_pos)
                ordered.remove(victim)
                receivers = {id(cfg): cfg for _, cfg in moves}
                for cfg in receivers.values():
                    ordered.remove(cfg)
                    bisect.insort(ordered, cfg, key=key)
                progress = True
                break
    return ConfigurationSet(configs, scheduler=schedule.scheduler + "+repack")


class TestRepackProperties:
    @settings(max_examples=40, deadline=None)
    @given(pattern=st.lists(pairs, min_size=1, max_size=16, unique=True))
    def test_position_map_output_unchanged(self, pattern):
        """repack == the reference O(K)-scan implementation, byte for byte."""
        conns = route_requests(TORUS, RequestSet.from_pairs(pattern))
        # Pad into singletons so there is real dissolution work to do.
        padded = ConfigurationSet(
            [Configuration([c]) for c in conns], scheduler="padded"
        )
        fast = repack(padded, kernel="set")
        slow = reference_repack(padded)
        assert canonical_dumps(schedule_to_dict(fast)) == canonical_dumps(
            schedule_to_dict(slow)
        )
        fast.validate(conns)

    @settings(max_examples=40, deadline=None)
    @given(pattern=st.lists(pairs, min_size=1, max_size=16, unique=True))
    def test_repack_input_byte_identical(self, pattern):
        conns = route_requests(TORUS, RequestSet.from_pairs(pattern))
        schedule = first_fit(conns)
        snapshot = canonical_dumps(schedule_to_dict(schedule))
        repacked = repack(schedule)
        assert canonical_dumps(schedule_to_dict(schedule)) == snapshot
        assert repacked.degree <= schedule.degree
        repacked.validate(conns)
