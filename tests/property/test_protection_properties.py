"""Property-based tests for compile-time protection.

Three invariants, over random patterns and random fault scenarios on
the 4x4 torus:

* **Backup validity** -- every covered scenario's backup configuration
  set is a conflict-free schedule of the *whole* pattern that never
  touches the failed fiber (this is what makes a run-time failover
  legal from any simulator state).
* **Coverage** -- a covered plan detours and places exactly the
  affected connections; unaffected ones keep their base slot/route.
* **Translation invariance** -- protecting a translated copy of a
  pattern hits the same cache entry, and the detranslated document
  still deep-validates on the base topology (the stored-detour story:
  BFS tie-breaks are not translation-equivariant, so this only holds
  because detours are carried through ``translate_link``, never
  recomputed).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.paths import route_requests
from repro.core.protection import build_protection, default_scenarios
from repro.core.registry import get_scheduler
from repro.core.requests import RequestSet
from repro.service.cache import ArtifactCache
from repro.service.protect import protect_pattern, protection_from_dict
from repro.topology.torus import Torus2D

TORUS = Torus2D(4)
N = TORUS.num_nodes


@st.composite
def patterns(draw):
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)).filter(
                lambda p: p[0] != p[1]
            ),
            min_size=1,
            max_size=12,
            unique=True,
        )
    )
    return RequestSet.from_pairs(pairs)


def compiled(requests):
    connections = route_requests(TORUS, requests)
    schedule = get_scheduler("combined")(connections, TORUS)
    schedule.validate(connections)
    return connections, schedule


class TestBackupValidity:
    @given(patterns(), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_backup_schedule_valid_and_avoids_fiber(self, requests, pick):
        connections, schedule = compiled(requests)
        scenarios = default_scenarios(TORUS)
        link = scenarios[pick % len(scenarios)]
        protected = build_protection(
            TORUS, connections, schedule, scenarios=[link]
        )
        plan = protected.plan(link)
        # The torus is 2-connected in every dimension: a single transit
        # cut never partitions it, so every scenario must be covered.
        assert plan.covered
        backup = protected.backup_schedule(link)
        backup.validate(protected.backup_connections(link))
        assert all(link not in cfg.used_links for cfg in backup)
        assert backup.degree == schedule.degree + plan.delta_k

    @given(patterns(), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_plan_covers_exactly_the_affected_set(self, requests, pick):
        connections, schedule = compiled(requests)
        scenarios = default_scenarios(TORUS)
        link = scenarios[pick % len(scenarios)]
        protected = build_protection(
            TORUS, connections, schedule, scenarios=[link]
        )
        plan = protected.plan(link)
        affected = {c.index for c in connections if link in c.link_set}
        assert set(plan.affected) == affected
        assert set(plan.detours) == affected
        assert set(plan.placements) == affected
        slots = protected.slot_map_for(link)
        routes = protected.routes_for(link)
        base_slots = protected.base_slot_map()
        for c in connections:
            if c.index in affected:
                assert link not in routes[c.index]
            else:
                assert slots[c.index] == base_slots[c.index]
                assert routes[c.index] == c.link_set


class TestTranslationInvariance:
    @given(
        st.lists(
            st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)).filter(
                lambda p: p[0] != p[1]
            ),
            min_size=2,
            max_size=8,
            unique=True,
        ),
        # Only even offsets are admissible routing symmetries of a
        # balanced-tie-break even torus (see ``translation_group``).
        st.sampled_from([0, 2]),
        st.sampled_from([0, 2]),
    )
    @settings(max_examples=15, deadline=None)
    def test_translated_pattern_shares_entry_and_validates(
        self, pairs, dx, dy
    ):
        def shift(v):
            x, y = v % 4, v // 4
            return ((x + dx) % 4) + 4 * ((y + dy) % 4)

        shifted = [(shift(s), shift(d)) for s, d in pairs]
        cache = ArtifactCache()
        base = protect_pattern(TORUS, pairs, cache=cache)
        other = protect_pattern(TORUS, shifted, cache=cache)
        # Same canonical pattern -> same digest -> second call hits.
        assert other.digest == base.digest
        assert base.cache == "miss"
        assert other.cache == "hit"
        # The detranslated artifacts deep-validate in caller ids.
        base.protected.validate()
        other.protected.validate()
        # And the documents decode standalone (structural audit).
        protection_from_dict(TORUS, base.doc)
        protection_from_dict(TORUS, other.doc)
        # The served plans protect the *caller's* request set.
        assert sorted(
            c.request.pair for c in other.protected.connections
        ) == sorted(shifted)
