"""Property-based tests for the TDM transfer model and simulators."""

from hypothesis import given, settings, strategies as st

from repro.core.requests import RequestSet
from repro.simulator.compiled import (
    compiled_completion_time,
    simulate_compiled,
    transfer_chunks,
    transfer_finish,
)
from repro.simulator.dynamic import simulate_dynamic
from repro.simulator.params import SimParams
from repro.topology.torus import Torus2D

TORUS = Torus2D(4)


@st.composite
def sized_request_sets(draw):
    n = TORUS.num_nodes
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda p: p[0] != p[1]
            ),
            min_size=1,
            max_size=20,
            unique=True,
        )
    )
    sizes = draw(
        st.lists(st.integers(1, 40), min_size=len(pairs), max_size=len(pairs))
    )
    return RequestSet.from_sized_pairs(
        [(s, d, z) for (s, d), z in zip(pairs, sizes)]
    )


class TestTransferModel:
    @given(st.integers(1, 10_000), st.integers(1, 64))
    def test_chunks_cover_exactly(self, size, payload):
        chunks = transfer_chunks(size, payload)
        assert (chunks - 1) * payload < size <= chunks * payload

    @given(
        st.integers(0, 1000), st.integers(0, 63), st.integers(1, 64),
        st.integers(1, 50),
    )
    def test_finish_properties(self, start, slot, degree, chunks):
        slot %= degree
        finish = transfer_finish(start, slot, degree, chunks)
        first = finish - 1 - (chunks - 1) * degree
        assert first >= start
        assert first % degree == slot
        assert first - start < degree  # no full frame wasted waiting


class TestCompiledProperties:
    @given(sized_request_sets())
    @settings(max_examples=40, deadline=None)
    def test_analytic_equals_cycle_level(self, rs):
        params = SimParams()
        fast = compiled_completion_time(TORUS, rs, params)
        slow = simulate_compiled(TORUS, rs, params)
        assert fast.completion_time == slow.completion_time

    @given(sized_request_sets())
    @settings(max_examples=40, deadline=None)
    def test_makespan_lower_bound(self, rs):
        """Compiled time is at least startup + the largest message's
        serial transfer time."""
        params = SimParams()
        result = compiled_completion_time(TORUS, rs, params)
        longest = max(transfer_chunks(r.size, params.slot_payload) for r in rs)
        assert result.completion_time >= params.compiled_startup + longest


class TestDynamicProperties:
    @given(sized_request_sets(), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_everything_delivered_and_timestamped(self, rs, degree):
        result = simulate_dynamic(TORUS, rs, degree, SimParams())
        for m in result.messages:
            assert m.delivered is not None
            assert m.first_attempt is not None
            assert m.established is not None
            assert m.first_attempt <= m.established < m.delivered

    @given(sized_request_sets(), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_compiled_never_loses(self, rs, degree):
        """The paper's global claim holds on arbitrary patterns, not
        just the evaluation workloads."""
        params = SimParams()
        compiled = compiled_completion_time(TORUS, rs, params).completion_time
        dynamic = simulate_dynamic(TORUS, rs, degree, params).completion_time
        assert compiled <= dynamic
