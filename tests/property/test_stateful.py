"""Stateful property tests (hypothesis rule-based state machines)."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.simulator.tdm import FREE, LinkSlotState
from repro.topology.faults import FaultyTopology
from repro.topology.torus import Torus2D

DEGREE = 4


class LinkChannelMachine(RuleBasedStateMachine):
    """Lifecycle of one link's virtual channels.

    Models the legal operations the reservation protocol performs --
    lock a free subset, resolve a lock into ownership or release it,
    tear a circuit down -- and asserts the bookkeeping invariants the
    simulator relies on.
    """

    def __init__(self):
        super().__init__()
        self.state = LinkSlotState(DEGREE)
        self.next_rid = 0
        self.locks: dict[int, list[int]] = {}   # rid -> slots locked
        self.owners: dict[int, int] = {}        # rid -> owned slot

    @rule(data=st.data())
    def lock_some_free_slots(self, data):
        free = self.state.free_slots()
        if not free:
            return
        subset = data.draw(st.sets(st.sampled_from(free), min_size=1))
        rid = self.next_rid
        self.next_rid += 1
        self.state.lock_slots(sorted(subset), rid)
        self.locks[rid] = sorted(subset)

    @precondition(lambda self: self.locks)
    @rule(data=st.data(), keep=st.booleans())
    def resolve_lock(self, data, keep):
        rid = data.draw(st.sampled_from(sorted(self.locks)))
        slots = self.locks.pop(rid)
        if keep:
            chosen = slots[0]
            self.state.release_locks(rid, keep=chosen)
            self.owners[rid] = chosen
        else:
            self.state.release_locks(rid)

    @precondition(lambda self: self.owners)
    @rule(data=st.data())
    def release_circuit(self, data):
        rid = data.draw(st.sampled_from(sorted(self.owners)))
        del self.owners[rid]
        self.state.release_owner(rid)

    @invariant()
    def model_matches_state(self):
        for rid, slots in self.locks.items():
            for k in slots:
                assert self.state.lock[k] == rid
        for rid, slot in self.owners.items():
            assert self.state.owner[slot] == rid
        # No channel is both locked and owned; counts match the model.
        locked = sum(1 for l in self.state.lock if l != FREE)
        owned = sum(1 for o in self.state.owner if o != FREE)
        assert locked == sum(len(s) for s in self.locks.values())
        assert owned == len(self.owners)
        for k in range(DEGREE):
            assert not (self.state.lock[k] != FREE and self.state.owner[k] != FREE)

    @invariant()
    def free_slots_consistent(self):
        free = set(self.state.free_slots())
        for k in range(DEGREE):
            expected_free = self.state.lock[k] == FREE and self.state.owner[k] == FREE
            assert (k in free) == expected_free


TestLinkChannelMachine = LinkChannelMachine.TestCase
TestLinkChannelMachine.settings = settings(max_examples=50, deadline=None)


class FaultRepairMachine(RuleBasedStateMachine):
    """Fail/restore fibers on a 4x4 torus; routing must stay coherent.

    After every step: routes exist for a fixed probe set whenever the
    surviving graph is connected, never traverse a failed fiber, and
    restoring everything returns routing to the healthy baseline.
    """

    def __init__(self):
        super().__init__()
        self.base = Torus2D(4)
        self.faulty = FaultyTopology(Torus2D(4))
        self.healthy_routes = {
            (s, d): self.base.route(s, d)
            for s, d in [(0, 5), (3, 12), (15, 0), (7, 8)]
        }

    @rule(offset=st.integers(0, 63))
    def fail(self, offset):
        self.faulty.fail_link(self.faulty.transit_link_base + offset)

    @rule(offset=st.integers(0, 63))
    def restore(self, offset):
        self.faulty.restore_link(self.faulty.transit_link_base + offset)

    @invariant()
    def routes_avoid_failures(self):
        from repro.topology.base import RoutingError

        for (s, d) in self.healthy_routes:
            try:
                path = self.faulty.route(s, d)
            except RoutingError:
                continue  # legitimately disconnected
            assert self.faulty.failed_links.isdisjoint(path)

    @invariant()
    def full_restore_is_baseline(self):
        if not self.faulty.failed_links:
            for (s, d), route in self.healthy_routes.items():
                assert self.faulty.route(s, d) == route


TestFaultRepairMachine = FaultRepairMachine.TestCase
TestFaultRepairMachine.settings = settings(max_examples=25, deadline=None)
