"""Tests for the pattern-spec recognition layer."""

import pytest

from repro.compiler.recognition import SpecError, recognize


class TestSpecs:
    def test_ring(self):
        rs = recognize({"pattern": "ring", "nodes": 8})
        assert len(rs) == 16

    def test_unidirectional_ring(self):
        rs = recognize({"pattern": "ring", "nodes": 8, "bidirectional": False})
        assert len(rs) == 8

    def test_stencil2d(self):
        rs = recognize({"pattern": "stencil2d", "width": 4, "height": 4, "size": 9})
        assert len(rs) == 64
        assert all(r.size == 9 for r in rs)

    def test_stencil3d(self):
        rs = recognize({"pattern": "stencil3d", "dims": [4, 4, 4], "sizes": [4, 2, 1]})
        assert len(rs) == 64 * 26

    def test_hypercube(self):
        assert len(recognize({"pattern": "hypercube", "nodes": 16})) == 64

    def test_shuffle_exchange(self):
        assert len(recognize({"pattern": "shuffle-exchange", "nodes": 64})) == 126

    def test_all_to_all(self):
        assert len(recognize({"pattern": "all-to-all", "nodes": 8})) == 56

    def test_transpose(self):
        assert len(recognize({"pattern": "transpose", "width": 4})) == 12

    def test_bit_reversal(self):
        rs = recognize({"pattern": "bit-reversal", "nodes": 16})
        assert (1, 8) in rs.pairs

    def test_redistribution(self):
        rs = recognize({
            "pattern": "redistribution",
            "extents": [8, 8],
            "source": [[4, 2], [1, 1]],
            "target": [[1, 1], [4, 2]],
        })
        assert len(rs) > 0
        assert all(r.size >= 1 for r in rs)

    def test_explicit_pairs(self):
        rs = recognize({"pattern": "pairs", "pairs": [[0, 2], [1, 3]], "size": 4})
        assert rs.pairs == ((0, 2), (1, 3))
        assert all(r.size == 4 for r in rs)


class TestErrors:
    def test_missing_pattern_key(self):
        with pytest.raises(SpecError, match="pattern"):
            recognize({})

    def test_unknown_pattern(self):
        with pytest.raises(SpecError, match="unknown"):
            recognize({"pattern": "mystery"})

    def test_missing_field(self):
        with pytest.raises(SpecError, match="missing keys"):
            recognize({"pattern": "ring"})
