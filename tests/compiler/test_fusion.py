"""Tests for communication phase fusion."""

import pytest

from repro.compiler.fusion import compile_fused, fuse_phases, merge_requests
from repro.compiler.program import CommPhase
from repro.core.requests import RequestSet
from repro.patterns.classic import hypercube_pattern, ring_pattern
from repro.simulator.params import SimParams

ALWAYS = lambda a, b: True


@pytest.fixture()
def sparse_phases():
    """Two tiny disjoint phases: fusion should obviously win (one
    startup saved, degrees do not interact)."""
    return [
        CommPhase("a", RequestSet.from_pairs([(0, 1), (2, 3)], size=4)),
        CommPhase("b", RequestSet.from_pairs([(8, 9), (10, 11)], size=4)),
    ]


class TestMergeRequests:
    def test_union_size(self):
        a = ring_pattern(8, size=4)
        b = hypercube_pattern(8, size=4)
        merged = merge_requests(a, b)
        assert len(merged) == len(a) + len(b)

    def test_duplicate_pairs_survive(self):
        a = RequestSet.from_pairs([(0, 1)])
        b = RequestSet.from_pairs([(0, 1)])
        merged = merge_requests(a, b)
        assert len(merged) == 2


class TestFusePhases:
    def test_opt_in_default_never_fuses(self, torus8, sparse_phases):
        out = fuse_phases(torus8, sparse_phases, SimParams())
        assert [p.name for p in out] == ["a", "b"]

    def test_fuses_disjoint_sparse_phases(self, torus8, sparse_phases):
        out = fuse_phases(torus8, sparse_phases, SimParams(), can_fuse=ALWAYS)
        assert len(out) == 1
        assert out[0].name == "a+b"

    def test_fusion_reduces_total_time(self, torus8, sparse_phases):
        from repro.compiler.program import compile_program

        params = SimParams()
        separate = compile_program(torus8, sparse_phases).communication_time(params)
        fused = compile_fused(
            torus8, sparse_phases, params, can_fuse=ALWAYS
        ).communication_time(params)
        assert fused < separate

    def test_refuses_bad_fusions(self, torus8):
        """Fusing a high-degree small-message phase with a low-degree
        big-message phase stretches the big messages' slot spacing from
        2 to ~64 frames -- fusion must be evaluated and rejected."""
        from repro.patterns.classic import all_to_all_pattern

        phases = [
            CommPhase("a2a", all_to_all_pattern(64, size=4)),     # K = 64
            CommPhase("ring", ring_pattern(64, size=400)),        # K = 2
        ]
        out = fuse_phases(torus8, phases, SimParams(), can_fuse=ALWAYS)
        assert [p.name for p in out] == ["a2a", "ring"]

    def test_respects_repetition_mismatch(self, torus8, sparse_phases):
        phases = [
            CommPhase("a", sparse_phases[0].requests, repetitions=1),
            CommPhase("b", sparse_phases[1].requests, repetitions=5),
        ]
        out = fuse_phases(torus8, phases, SimParams(), can_fuse=ALWAYS)
        assert len(out) == 2

    def test_chain_fusion(self, torus8):
        """Three mutually disjoint sparse phases collapse to one."""
        phases = [
            CommPhase("p1", RequestSet.from_pairs([(0, 1)], size=4)),
            CommPhase("p2", RequestSet.from_pairs([(2, 3)], size=4)),
            CommPhase("p3", RequestSet.from_pairs([(8, 9)], size=4)),
        ]
        out = fuse_phases(torus8, phases, SimParams(), can_fuse=ALWAYS)
        assert len(out) == 1

    def test_compiled_fused_program_valid(self, torus8, sparse_phases):
        program = compile_fused(torus8, sparse_phases, can_fuse=ALWAYS)
        for phase in program.phases:
            from repro.core.paths import route_requests

            connections = route_requests(torus8, phase.phase.requests)
            phase.schedule.validate(connections)
