"""Tests for switch-register code generation and compiled programs."""

import pytest

from repro.compiler.codegen import decode_registers, generate_registers
from repro.compiler.program import CommPhase, compile_program
from repro.core.combined import combined_schedule
from repro.core.paths import route_requests
from repro.core.requests import RequestSet
from repro.patterns.classic import nearest_neighbour_2d, ring_pattern
from repro.patterns.random_patterns import random_pattern
from repro.simulator.params import SimParams


def roundtrip(topology, requests):
    connections = route_requests(topology, requests)
    schedule = combined_schedule(connections, topology)
    regs = generate_registers(topology, schedule)
    traced = decode_registers(regs)
    scheduled = [
        {c.pair for c in cfg} for cfg in schedule
    ]
    return scheduled, traced


class TestRoundTrip:
    """schedule -> registers -> traced circuits must be the identity."""

    def test_ring(self, torus8):
        scheduled, traced = roundtrip(torus8, ring_pattern(64))
        assert scheduled == traced

    def test_nearest_neighbour(self, torus8):
        scheduled, traced = roundtrip(torus8, nearest_neighbour_2d(8, 8))
        assert scheduled == traced

    def test_random(self, torus8):
        scheduled, traced = roundtrip(torus8, random_pattern(64, 400, seed=12))
        assert scheduled == traced

    def test_fig1_configuration(self, torus4):
        requests = RequestSet.from_pairs([(4, 1), (5, 3), (6, 10), (8, 9), (11, 2)])
        scheduled, traced = roundtrip(torus4, requests)
        assert traced == [{(4, 1), (5, 3), (6, 10), (8, 9), (11, 2)}]

    def test_register_word_count_is_degree(self, torus8):
        connections = route_requests(torus8, ring_pattern(64))
        schedule = combined_schedule(connections, torus8)
        regs = generate_registers(torus8, schedule)
        assert all(len(w) == schedule.degree for w in regs.words.values())
        assert len(regs.words) == 64


class TestCompiledProgram:
    def test_per_phase_degrees(self, torus8):
        program = compile_program(torus8, [
            CommPhase("ring", ring_pattern(64, size=16)),
            CommPhase("stencil", nearest_neighbour_2d(8, 8, size=16)),
        ])
        degrees = program.degrees()
        assert degrees["ring"] == 2
        assert degrees["stencil"] == 4

    def test_communication_time_sums_phases(self, torus8):
        params = SimParams()
        single = compile_program(torus8, [CommPhase("ring", ring_pattern(64, size=16))])
        double = compile_program(torus8, [
            CommPhase("ring", ring_pattern(64, size=16)),
            CommPhase("ring2", ring_pattern(64, size=16)),
        ])
        assert double.communication_time(params) == 2 * single.communication_time(params)

    def test_repetitions_scale(self, torus8):
        params = SimParams()
        once = compile_program(torus8, [CommPhase("p", ring_pattern(64, size=8))])
        thrice = compile_program(torus8, [
            CommPhase("p", ring_pattern(64, size=8), repetitions=3)
        ])
        assert thrice.communication_time(params) == 3 * once.communication_time(params)

    def test_phase_makespan_matches_simulator(self, torus8):
        """The program-level makespan must agree with the compiled
        simulator for the same pattern and scheduler."""
        from repro.simulator.compiled import compiled_completion_time

        params = SimParams()
        requests = ring_pattern(64, size=16)
        program = compile_program(torus8, [CommPhase("ring", requests)])
        direct = compiled_completion_time(torus8, requests, params)
        assert program.phases[0].makespan(params) == direct.completion_time

    def test_scheduler_selectable(self, torus8):
        program = compile_program(
            torus8, [CommPhase("p", random_pattern(64, 200, seed=1))],
            scheduler="greedy",
        )
        assert program.scheduler == "greedy"
