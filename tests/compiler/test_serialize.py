"""Tests for artifact serialisation (schedule + register files)."""

import json

import pytest

from repro.compiler.codegen import generate_registers
from repro.compiler.serialize import (
    ArtifactError,
    load_artifact,
    registers_from_dict,
    registers_to_dict,
    save_artifact,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core.combined import combined_schedule
from repro.core.paths import route_requests
from repro.patterns.classic import nearest_neighbour_2d, ring_pattern
from repro.topology.torus import TieBreak, Torus2D


@pytest.fixture()
def compiled(torus8):
    requests = nearest_neighbour_2d(8, 8, size=16)
    connections = route_requests(torus8, requests)
    schedule = combined_schedule(connections, torus8)
    return requests, connections, schedule


class TestScheduleRoundTrip:
    def test_roundtrip_preserves_slots(self, torus8, compiled):
        _, connections, schedule = compiled
        data = schedule_to_dict(schedule)
        loaded, loaded_conns = schedule_from_dict(torus8, data)
        assert loaded.degree == schedule.degree
        assert [
            {c.pair for c in cfg} for cfg in loaded
        ] == [
            {c.pair for c in cfg} for cfg in schedule
        ]

    def test_sizes_survive(self, torus8, compiled):
        _, _, schedule = compiled
        loaded, conns = schedule_from_dict(torus8, schedule_to_dict(schedule))
        assert all(c.request.size == 16 for c in conns)

    def test_json_serialisable(self, compiled):
        _, _, schedule = compiled
        json.dumps(schedule_to_dict(schedule))

    def test_conflicting_file_rejected(self, torus8):
        data = {
            "version": 1,
            "scheduler": "evil",
            "degree": 1,
            # (0,1) and (0,2) share the injection fiber: illegal slot.
            "slots": [[{"src": 0, "dst": 1}, {"src": 0, "dst": 2}]],
        }
        with pytest.raises(ArtifactError, match="not conflict-free"):
            schedule_from_dict(torus8, data)

    def test_degree_lie_rejected(self, torus8):
        data = {
            "version": 1, "scheduler": "x", "degree": 5,
            "slots": [[{"src": 0, "dst": 1}]],
        }
        with pytest.raises(ArtifactError, match="declared degree"):
            schedule_from_dict(torus8, data)

    def test_version_checked(self, torus8):
        with pytest.raises(ArtifactError, match="version"):
            schedule_from_dict(torus8, {"version": 99, "slots": [], "degree": 0})


class TestRegisterRoundTrip:
    def test_roundtrip(self, torus8, compiled):
        _, _, schedule = compiled
        regs = generate_registers(torus8, schedule)
        loaded = registers_from_dict(torus8, registers_to_dict(regs))
        assert loaded.words == regs.words
        assert loaded.degree == regs.degree

    def test_topology_mismatch_rejected(self, torus8, compiled):
        _, _, schedule = compiled
        regs = generate_registers(torus8, schedule)
        other = Torus2D(8, tie_break=TieBreak.POSITIVE)
        with pytest.raises(ArtifactError, match="loader topology"):
            registers_from_dict(other, registers_to_dict(regs))


class TestArtifactFiles:
    def test_save_load_audit(self, tmp_path, torus8, compiled):
        _, _, schedule = compiled
        path = tmp_path / "stencil.json"
        save_artifact(path, torus8, schedule, name="stencil")
        loaded_schedule, loaded_regs = load_artifact(path, torus8)
        assert loaded_schedule.degree == schedule.degree
        assert loaded_regs.degree == max(schedule.degree, 1)

    def test_tampered_register_detected(self, tmp_path, torus8):
        requests = ring_pattern(64, size=4)
        connections = route_requests(torus8, requests)
        schedule = combined_schedule(connections, torus8)
        path = tmp_path / "ring.json"
        save_artifact(path, torus8, schedule)
        doc = json.loads(path.read_text())
        # Cut one circuit: dark the PE input of switch 0 in slot 0.
        words = doc["registers"]["words"]["0"]
        assert words[0][0] != -1
        words[0][0] = -1
        path.write_text(json.dumps(doc))
        with pytest.raises(ArtifactError, match="does not realise"):
            load_artifact(path, torus8)

    def test_wrong_topology_rejected(self, tmp_path, torus8, torus4):
        requests = ring_pattern(64, size=4)
        schedule = combined_schedule(route_requests(torus8, requests), torus8)
        path = tmp_path / "a.json"
        save_artifact(path, torus8, schedule)
        with pytest.raises(ArtifactError, match="loader topology"):
            load_artifact(path, torus4)


class TestCanonicalJson:
    def test_sorts_keys_and_compacts(self):
        from repro.compiler.serialize import canonical_dumps

        assert canonical_dumps({"b": 1, "a": [2, {"z": 3, "y": 4}]}) == (
            '{"a":[2,{"y":4,"z":3}],"b":1}'
        )

    def test_integral_floats_coerced(self):
        from repro.compiler.serialize import canonical_dumps

        assert canonical_dumps({"k": 3.0}) == canonical_dumps({"k": 3})
        assert canonical_dumps(2.5) == "2.5"

    def test_non_finite_rejected(self):
        from repro.compiler.serialize import canonical_dumps

        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ArtifactError, match="non-finite"):
                canonical_dumps({"k": bad})

    def test_non_string_keys_coerced(self):
        from repro.compiler.serialize import canonical_dumps

        assert canonical_dumps({1: "x"}) == canonical_dumps({"1": "x"})

    def test_unsupported_types_rejected(self):
        from repro.compiler.serialize import canonical_dumps

        with pytest.raises(ArtifactError, match="type"):
            canonical_dumps({"k": {1, 2}})


class TestArtifactDigest:
    def test_golden_digest_of_fixed_doc(self):
        # Pins the canonical encoding itself.  If this moves, every
        # payload_sha256 in every cache directory is invalidated --
        # intended only alongside a FORMAT_VERSION bump.
        from repro.compiler.serialize import artifact_digest

        doc = {"version": 1, "b": [1, 2.0], "a": {"nested": True, "s": "x"}}
        assert artifact_digest(doc) == (
            "c4ff8fc4b1e10321a0e0b9c36d790116e9f4e17b7c2032947825ac3223244b0d"
        )

    def test_key_order_invariant(self):
        from repro.compiler.serialize import artifact_digest

        assert artifact_digest({"a": 1, "b": 2}) == artifact_digest(
            {"b": 2, "a": 1}
        )

    def test_golden_digest_of_compiled_schedule(self, torus4):
        # End-to-end determinism: routing + coloring + serialisation
        # must be byte-stable across processes and platforms.
        from repro.compiler.serialize import artifact_digest
        from repro.core.coloring import coloring_schedule
        from repro.patterns.classic import transpose_pattern

        requests = transpose_pattern(4)
        schedule = coloring_schedule(route_requests(torus4, requests))
        assert artifact_digest(schedule_to_dict(schedule)) == (
            "68be61eab1b0072a09f70244df715e1899ae20519174ea6e0968686d4c88a82f"
        )
