"""Tests for dynamic-protocol event tracing."""

import pytest

from repro.core.requests import RequestSet
from repro.simulator.dynamic import simulate_dynamic
from repro.simulator.dynamic.trace import ProtocolTrace, TraceEvent
from repro.simulator.params import SimParams


@pytest.fixture()
def traced_run(torus8):
    trace = ProtocolTrace()
    requests = RequestSet.from_pairs([(0, 1), (0, 2), (5, 6)], size=8)
    result = simulate_dynamic(torus8, requests, 1, SimParams(), trace=trace)
    return trace, result


class TestTraceContent:
    def test_attached_to_result(self, traced_run):
        trace, result = traced_run
        assert result.trace is trace

    def test_one_arrival_per_message(self, traced_run):
        trace, result = traced_run
        assert trace.count("arrive") == len(result.messages)

    def test_every_message_established_and_delivered(self, traced_run):
        trace, result = traced_run
        assert trace.count("established") == len(result.messages)
        assert trace.count("delivered") == len(result.messages)
        assert trace.count("released") == len(result.messages)

    def test_failures_match_retry_count(self, traced_run):
        trace, result = traced_run
        assert trace.count("res-fail") == result.total_retries

    def test_wellformed(self, traced_run):
        trace, _ = traced_run
        trace.check_wellformed()

    def test_per_message_ordering(self, traced_run):
        trace, _ = traced_run
        for mid in range(3):
            kinds = [e.kind for e in trace.of_message(mid)]
            assert kinds[0] == "arrive"
            assert kinds.index("established") < kinds.index("delivered")
            assert kinds.index("delivered") < kinds.index("released")

    def test_chronological(self, traced_run):
        trace, _ = traced_run
        times = [e.time for e in trace.events]
        assert times == sorted(times)


class TestTraceOptions:
    def test_hop_recording_optional(self, torus8):
        quiet = ProtocolTrace(record_hops=False)
        requests = RequestSet.from_pairs([(0, 9)], size=4)
        simulate_dynamic(torus8, requests, 1, SimParams(), trace=quiet)
        assert quiet.count("res-hop") == 0
        assert quiet.count("established") == 1

    def test_render_limits(self, traced_run):
        trace, _ = traced_run
        out = trace.render(limit=5)
        assert "more events" in out
        assert len(out.splitlines()) == 6

    def test_no_trace_by_default(self, torus8):
        requests = RequestSet.from_pairs([(0, 1)])
        result = simulate_dynamic(torus8, requests, 1, SimParams())
        assert result.trace is None


class TestWellformedChecks:
    def test_detects_double_arrival(self):
        trace = ProtocolTrace()
        trace.events = [TraceEvent(0, "arrive", 0), TraceEvent(1, "arrive", 0)]
        with pytest.raises(AssertionError, match="arrivals"):
            trace.check_wellformed()

    def test_detects_delivery_before_establishment(self):
        trace = ProtocolTrace()
        trace.events = [
            TraceEvent(0, "arrive", 0),
            TraceEvent(5, "delivered", 0),
            TraceEvent(9, "established", 0),
        ]
        with pytest.raises(AssertionError, match="before"):
            trace.check_wellformed()
