"""Tests for the compiled-communication model."""

import pytest

from repro.core.requests import RequestSet
from repro.patterns.applications import gs_pattern, tscf_pattern
from repro.patterns.random_patterns import random_pattern
from repro.simulator.compiled import (
    compiled_completion_time,
    simulate_compiled,
    transfer_chunks,
    transfer_finish,
)
from repro.simulator.params import SimParams


class TestTransferModel:
    def test_chunks(self):
        assert transfer_chunks(1, 4) == 1
        assert transfer_chunks(4, 4) == 1
        assert transfer_chunks(5, 4) == 2
        assert transfer_chunks(64, 4) == 16

    def test_chunks_rejects_empty(self):
        with pytest.raises(ValueError):
            transfer_chunks(0, 4)

    def test_finish_aligned_start(self):
        # start 0, slot 0, degree 2, 3 chunks: slots 0, 2, 4 -> ends at 5.
        assert transfer_finish(0, 0, 2, 3) == 5

    def test_finish_waits_for_slot(self):
        # start 3, slot 1, degree 4: first use at t=5.
        assert transfer_finish(3, 1, 4, 1) == 6

    def test_degree_one(self):
        assert transfer_finish(10, 0, 1, 7) == 17


class TestPaperGSColumn:
    """The calibration anchor: GS compiled times must equal the paper."""

    @pytest.mark.parametrize("grid,expected", [(64, 35), (128, 67), (256, 131)])
    def test_gs(self, torus8, params, grid, expected):
        result = compiled_completion_time(torus8, gs_pattern(grid).requests, params)
        assert result.completion_time == expected
        assert result.degree == 2

    def test_tscf(self, torus8, params):
        result = compiled_completion_time(torus8, tscf_pattern().requests, params)
        assert result.completion_time == 19  # paper Table 5


class TestAnalyticVsCycle:
    @pytest.mark.parametrize("n,seed", [(30, 0), (120, 1), (300, 2)])
    def test_agree_on_random_patterns(self, torus8, params, n, seed):
        requests = random_pattern(64, n, seed=seed, size=13)
        fast = compiled_completion_time(torus8, requests, params)
        slow = simulate_compiled(torus8, requests, params)
        assert fast.completion_time == slow.completion_time
        assert [m.delivered for m in fast.messages] == [
            m.delivered for m in slow.messages
        ]

    def test_agree_on_gs(self, torus8, params):
        requests = gs_pattern(128).requests
        assert (
            compiled_completion_time(torus8, requests, params).completion_time
            == simulate_compiled(torus8, requests, params).completion_time
        )


class TestResultShape:
    def test_every_message_delivered(self, torus8, params):
        result = compiled_completion_time(
            torus8, random_pattern(64, 50, seed=3, size=10), params
        )
        assert all(m.delivered is not None for m in result.messages)
        assert result.completion_time == max(m.delivered for m in result.messages)

    def test_messages_get_slots_within_degree(self, torus8, params):
        result = compiled_completion_time(
            torus8, random_pattern(64, 50, seed=4), params
        )
        assert all(0 <= m.slot < result.degree for m in result.messages)

    def test_scheduler_choice_respected(self, torus8, params):
        requests = random_pattern(64, 200, seed=5)
        greedy = compiled_completion_time(torus8, requests, params, scheduler="greedy")
        combined = compiled_completion_time(torus8, requests, params, scheduler="combined")
        assert combined.degree <= greedy.degree
        assert combined.completion_time <= greedy.completion_time

    def test_startup_charged(self, torus8):
        requests = RequestSet.from_pairs([(0, 1)])
        with_startup = compiled_completion_time(torus8, requests, SimParams(compiled_startup=10))
        without = compiled_completion_time(torus8, requests, SimParams(compiled_startup=0))
        assert with_startup.completion_time == without.completion_time + 10

    def test_makespan_alias(self, torus8, params):
        result = compiled_completion_time(torus8, RequestSet.from_pairs([(0, 1)]), params)
        assert result.makespan == result.completion_time
