"""Tests for register-driven simulation and weighted-frame codegen."""

import pytest

from repro.compiler.codegen import decode_registers, generate_registers
from repro.core.combined import combined_schedule
from repro.core.paths import route_requests
from repro.core.requests import RequestSet
from repro.core.weighted import weighted_schedule
from repro.patterns.classic import nearest_neighbour_2d, ring_pattern
from repro.simulator.compiled import compiled_completion_time
from repro.simulator.params import SimParams
from repro.simulator.register_sim import simulate_registers, weighted_registers


@pytest.fixture()
def compiled(torus8):
    requests = nearest_neighbour_2d(8, 8, size=16)
    connections = route_requests(torus8, requests)
    schedule = combined_schedule(connections, torus8)
    return requests, connections, schedule


class TestSimulateRegisters:
    def test_agrees_with_schedule_model(self, torus8, compiled):
        """Driving the emitted registers delivers in exactly the time
        the schedule-driven model predicts."""
        requests, _, schedule = compiled
        params = SimParams()
        regs = generate_registers(torus8, schedule)
        by_registers = simulate_registers(torus8, regs, requests, params)
        by_schedule = compiled_completion_time(torus8, requests, params)
        assert by_registers.completion_time == by_schedule.completion_time
        assert sorted(m.delivered for m in by_registers.messages) == \
            sorted(m.delivered for m in by_schedule.messages)

    def test_missing_circuit_detected(self, torus8, compiled):
        """A register image that does not serve some request must fail
        loudly, not hang."""
        _, _, schedule = compiled
        regs = generate_registers(torus8, schedule)
        stranger = RequestSet.from_pairs([(0, 63)], size=4)
        with pytest.raises(ValueError, match="no circuit"):
            simulate_registers(torus8, regs, stranger)

    def test_duplicate_pairs_served_in_turn(self, torus8):
        from repro.core.requests import Request

        requests = RequestSet(
            [Request(0, 1, size=8, tag=0), Request(0, 1, size=8, tag=1)],
            allow_duplicates=True,
        )
        connections = route_requests(torus8, requests)
        schedule = combined_schedule(connections, torus8)
        regs = generate_registers(torus8, schedule)
        result = simulate_registers(torus8, regs, requests)
        d = sorted(m.delivered for m in result.messages)
        assert d[0] < d[1]  # second message waits for the first


class TestWeightedRegisters:
    @pytest.fixture()
    def skewed(self, torus8):
        requests = RequestSet.from_sized_pairs(
            [(0, 1, 400), (2, 3, 400), (0, 2, 4), (1, 3, 4), (0, 3, 4)]
        )
        connections = route_requests(torus8, requests)
        schedule = combined_schedule(connections, torus8)
        return requests, weighted_schedule(schedule)

    def test_frame_length_words(self, torus8, skewed):
        _, weighted = skewed
        regs = weighted_registers(torus8, weighted)
        assert regs.degree == weighted.frame_length

    def test_traced_slots_match_frame(self, torus8, skewed):
        _, weighted = skewed
        regs = weighted_registers(torus8, weighted)
        traced = decode_registers(regs)
        for slot, config_idx in enumerate(weighted.frame):
            expected = {c.pair for c in weighted.base[config_idx]}
            assert traced[slot] == expected

    def test_weighted_registers_beat_flat(self, torus8, skewed):
        """The replicated frame's registers deliver the skewed traffic
        faster than the flat frame's."""
        requests, weighted = skewed
        flat_regs = generate_registers(torus8, weighted.base)
        heavy_regs = weighted_registers(torus8, weighted)
        params = SimParams()
        t_flat = simulate_registers(torus8, flat_regs, requests, params).completion_time
        t_heavy = simulate_registers(torus8, heavy_regs, requests, params).completion_time
        assert t_heavy < t_flat

    def test_matches_analytic_weighted_model(self, torus8, skewed):
        from repro.core.weighted import simulate_weighted

        requests, weighted = skewed
        params = SimParams()
        analytic = simulate_weighted(
            weighted, slot_payload=params.slot_payload,
            startup=params.compiled_startup,
        )
        regs = weighted_registers(torus8, weighted)
        driven = simulate_registers(torus8, regs, requests, params).completion_time
        assert driven == analytic
