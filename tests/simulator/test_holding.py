"""Tests for the holding variant of the reservation protocol."""

import pytest

from repro.core.requests import RequestSet
from repro.patterns.applications import tscf_pattern
from repro.patterns.classic import nearest_neighbour_2d
from repro.simulator.dynamic import simulate_dynamic
from repro.simulator.dynamic.trace import ProtocolTrace
from repro.simulator.params import SimParams


class TestHoldingBasics:
    def test_uncontended_identical_to_dropping(self, torus8, params):
        requests = RequestSet.from_pairs([(0, 9)], size=8)
        drop = simulate_dynamic(torus8, requests, 1, params)
        hold = simulate_dynamic(torus8, requests, 1, params, protocol="holding")
        assert drop.completion_time == hold.completion_time
        assert hold.total_retries == 0

    def test_invalid_protocol_rejected(self, torus8, params):
        with pytest.raises(ValueError, match="protocol"):
            simulate_dynamic(
                torus8, RequestSet.from_pairs([(0, 1)]), 1, params,
                protocol="quantum",
            )

    def test_everything_delivered_under_contention(self, torus8, params):
        requests = nearest_neighbour_2d(8, 8, size=16)
        result = simulate_dynamic(torus8, requests, 1, params, protocol="holding")
        assert all(m.delivered is not None for m in result.messages)

    def test_deterministic(self, torus8):
        requests = tscf_pattern().requests
        a = simulate_dynamic(torus8, requests, 2, SimParams(seed=1), protocol="holding")
        b = simulate_dynamic(torus8, requests, 2, SimParams(seed=1), protocol="holding")
        assert a.completion_time == b.completion_time


class TestHoldingVsDropping:
    def test_fewer_retries_under_contention(self, torus8, params):
        """Parking replaces most failed round trips."""
        requests = tscf_pattern().requests
        drop = simulate_dynamic(torus8, requests, 2, params)
        hold = simulate_dynamic(torus8, requests, 2, params, protocol="holding")
        assert hold.total_retries < drop.total_retries

    def test_faster_on_contended_fine_grained_traffic(self, torus8, params):
        requests = tscf_pattern().requests
        drop = simulate_dynamic(torus8, requests, 5, params).completion_time
        hold = simulate_dynamic(
            torus8, requests, 5, params, protocol="holding"
        ).completion_time
        assert hold < drop

    def test_parked_blocking_resolves(self, torus8, params):
        """Same-source messages at degree 1: the second RES parks on the
        injection fiber until the first circuit releases, instead of
        burning retries."""
        requests = RequestSet.from_pairs([(0, 1), (0, 2)], size=40)
        trace = ProtocolTrace(record_hops=False)
        result = simulate_dynamic(
            torus8, requests, 1, params, protocol="holding", trace=trace
        )
        assert trace.count("res-park") >= 1
        assert result.total_retries == 0
        assert all(m.delivered is not None for m in result.messages)

    def test_timeout_breaks_deadlock(self, torus8):
        """Two opposing reservations can hold-and-wait on each other's
        locks; the park timeout must break the cycle and both messages
        must still deliver."""
        # Heavy cross traffic through the same fibers at degree 1.
        requests = RequestSet.from_pairs(
            [(0, 2), (2, 0), (1, 3), (3, 1)], size=200
        )
        params = SimParams(hold_timeout=8)
        result = simulate_dynamic(torus8, requests, 1, params, protocol="holding")
        assert all(m.delivered is not None for m in result.messages)

    def test_compiled_still_wins(self, torus8, params):
        """Even the friendlier protocol does not threaten the paper's
        conclusion."""
        from repro.simulator.compiled import compiled_completion_time

        requests = tscf_pattern().requests
        compiled = compiled_completion_time(torus8, requests, params).completion_time
        for degree in (1, 2, 5, 10):
            hold = simulate_dynamic(
                torus8, requests, degree, params, protocol="holding"
            ).completion_time
            assert compiled < hold
