"""Tests for simulation parameters and TDM link state."""

import pytest

from repro.simulator.params import SimParams
from repro.simulator.tdm import FREE, LinkSlotState, TDMNetwork


class TestSimParams:
    def test_defaults_documented_calibration(self):
        p = SimParams()
        assert p.slot_payload == 4
        assert p.compiled_startup == 3
        assert p.control_hop_latency == 2

    @pytest.mark.parametrize("field,value", [
        ("slot_payload", 0),
        ("compiled_startup", -1),
        ("control_hop_latency", 0),
        ("retry_backoff", 0),
        ("max_slots", 0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            SimParams(**{field: value})

    def test_with_copies(self):
        p = SimParams()
        q = p.with_(slot_payload=8)
        assert q.slot_payload == 8
        assert p.slot_payload == 4

    def test_frozen(self):
        with pytest.raises(Exception):
            SimParams().slot_payload = 2  # type: ignore[misc]


class TestLinkSlotState:
    def test_initially_all_free(self):
        st = LinkSlotState(4)
        assert st.free_slots() == [0, 1, 2, 3]

    def test_lock_hides_slots(self):
        st = LinkSlotState(4)
        st.lock_slots([1, 2], rid=7)
        assert st.free_slots() == [0, 3]

    def test_release_keep_promotes_to_owner(self):
        st = LinkSlotState(4)
        st.lock_slots([1, 2], rid=7)
        st.release_locks(7, keep=2)
        assert st.lock == [FREE] * 4
        assert st.owner[2] == 7
        assert st.free_slots() == [0, 1, 3]

    def test_release_without_keep(self):
        st = LinkSlotState(4)
        st.lock_slots([0, 3], rid=5)
        st.release_locks(5)
        assert st.free_slots() == [0, 1, 2, 3]

    def test_release_owner(self):
        st = LinkSlotState(2)
        st.lock_slots([0], rid=1)
        st.release_locks(1, keep=0)
        st.release_owner(1)
        assert st.free_slots() == [0, 1]

    def test_double_lock_rejected(self):
        st = LinkSlotState(2)
        st.lock_slots([0], rid=1)
        with pytest.raises(RuntimeError):
            st.lock_slots([0], rid=2)

    def test_foreign_locks_untouched(self):
        st = LinkSlotState(3)
        st.lock_slots([0], rid=1)
        st.lock_slots([1], rid=2)
        st.release_locks(1)
        assert st.lock[1] == 2


class TestTDMNetwork:
    def test_lazy_link_creation(self, torus8):
        net = TDMNetwork(torus8, 4)
        assert net.occupied_channels() == 0
        st = net.link(5)
        assert st is net.link(5)

    def test_degree_validated(self, torus8):
        with pytest.raises(ValueError):
            TDMNetwork(torus8, 0)

    def test_occupied_channels_counts(self, torus8):
        net = TDMNetwork(torus8, 2)
        st = net.link(0)
        st.lock_slots([1], rid=9)
        st.release_locks(9, keep=1)
        assert net.occupied_channels() == 1
