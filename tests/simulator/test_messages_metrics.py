"""Tests for message bookkeeping and result summarisation."""

import pytest

from repro.core.requests import RequestSet
from repro.simulator.messages import Message, messages_from_requests
from repro.simulator.metrics import summarize


class TestMessages:
    def test_from_requests_preserves_order_and_sizes(self):
        rs = RequestSet.from_sized_pairs([(0, 1, 10), (2, 3, 20)])
        msgs = messages_from_requests(rs)
        assert [(m.src, m.dst, m.size) for m in msgs] == [(0, 1, 10), (2, 3, 20)]
        assert [m.mid for m in msgs] == [0, 1]

    def test_latency_none_until_delivered(self):
        m = Message(0, 0, 1, 4)
        assert m.latency is None
        m.first_attempt = 5
        m.delivered = 30
        assert m.latency == 25


class TestSummarize:
    def test_empty(self):
        assert summarize([]) == {"makespan": 0.0, "messages": 0.0}

    def test_undelivered_raises(self):
        with pytest.raises(ValueError, match="never delivered"):
            summarize([Message(0, 0, 1, 4)])

    def test_statistics(self):
        msgs = []
        for i, (start, done) in enumerate([(0, 10), (0, 20), (2, 32)]):
            m = Message(i, 0, 1, 4)
            m.first_attempt = start
            m.established = start + 4
            m.delivered = done
            msgs.append(m)
        out = summarize(msgs)
        assert out["makespan"] == 32.0
        assert out["messages"] == 3.0
        assert out["latency_mean"] == pytest.approx((10 + 20 + 30) / 3)
        assert out["latency_max"] == 30.0
        assert out["establish_mean"] == 4.0

    def test_retries_totalled(self):
        m = Message(0, 0, 1, 4)
        m.first_attempt = 0
        m.delivered = 5
        m.retries = 7
        assert summarize([m])["retries"] == 7.0
