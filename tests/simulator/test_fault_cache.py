"""Tests for artifact-cache-backed fault recovery in the compiled sim."""

from repro.patterns.classic import all_to_all_pattern
from repro.service.cache import ArtifactCache
from repro.simulator.compiled import simulate_compiled_faulty
from repro.simulator.faults import FaultEvent, FaultSchedule
from repro.topology.torus import Torus2D


def fixed_faults(topo, slot=40):
    link = topo.transit_link_base + 5
    return FaultSchedule([FaultEvent(slot, "fail", link)])


class TestCachedFaultRecovery:
    def test_results_match_uncached(self, torus4):
        requests = all_to_all_pattern(16, size=16)
        faults = fixed_faults(torus4)
        plain = simulate_compiled_faulty(torus4, requests, faults)
        cached = simulate_compiled_faulty(
            torus4, requests, faults, cache=ArtifactCache()
        )
        assert cached.reschedules == plain.reschedules == 1
        assert cached.initial_degree == plain.initial_degree
        assert cached.max_degree == plain.max_degree
        assert cached.lost == plain.lost == 0
        assert cached.completion_time == plain.completion_time

    def test_repeat_run_hits_for_every_compile(self, torus4):
        requests = all_to_all_pattern(16, size=16)
        faults = fixed_faults(torus4)
        cache = ArtifactCache()
        first = simulate_compiled_faulty(torus4, requests, faults, cache=cache)
        stores = cache.stats.stores
        second = simulate_compiled_faulty(torus4, requests, faults, cache=cache)
        # Identical campaign: initial compile + reschedule both hit.
        assert cache.stats.stores == stores  # nothing new compiled
        assert cache.stats.hits >= 2
        assert second.completion_time == first.completion_time
        assert second.fault_log == first.fault_log

    def test_cached_run_is_deterministic(self, torus4):
        requests = all_to_all_pattern(16, size=8)
        faults = fixed_faults(torus4)
        results = [
            simulate_compiled_faulty(
                torus4, requests, faults, cache=ArtifactCache()
            ).completion_time
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_pre_run_fault_compiles_on_degraded_topology(self, torus4):
        requests = all_to_all_pattern(16, size=4)
        link = torus4.transit_link_base + 3
        faults = FaultSchedule([FaultEvent(0, "fail", link)])
        cache = ArtifactCache()
        result = simulate_compiled_faulty(torus4, requests, faults, cache=cache)
        assert result.lost == 0
        assert result.reschedules == 0
        again = simulate_compiled_faulty(torus4, requests, faults, cache=cache)
        assert cache.stats.hits >= 1
        assert again.completion_time == result.completion_time

    def test_lost_messages_with_cache(self):
        # Cut every fiber out of node 0's switch: its messages are lost,
        # the rest still complete -- same as the uncached path.
        topo = Torus2D(4)
        requests = all_to_all_pattern(16, size=2)
        degraded = [
            link for link in range(topo.transit_link_base, topo.num_links)
            if topo.link_info(link).src == 0
        ]
        events = [FaultEvent(1, "fail", link) for link in degraded]
        plain = simulate_compiled_faulty(topo, requests, FaultSchedule(events))
        cached = simulate_compiled_faulty(
            topo, requests, FaultSchedule(events), cache=ArtifactCache()
        )
        assert cached.lost == plain.lost > 0
