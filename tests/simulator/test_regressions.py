"""Regression tests for dynamic-protocol correctness fixes.

Each test pins a bug that shipped in an earlier revision:

* ``max_slots`` used to fire on the REL teardown tail that trails the
  final delivery, failing runs that had actually completed.
* The holding protocol used to refresh a reservation's hold-timeout
  deadline every time it re-parked, so churn on a contended link could
  postpone the deadlock-breaking timeout indefinitely (starvation).
* A freed channel used to wake *every* reservation parked on the link
  (thundering herd), violating the documented FIFO fairness.
"""

from __future__ import annotations

import pytest

from repro.core.requests import RequestSet
from repro.simulator.dynamic.control import _DynamicSimulator, _Reservation
from repro.simulator.dynamic import simulate_dynamic
from repro.simulator.params import SimParams
from repro.topology.linear import LinearArray


class TestMaxSlotsBoundary:
    """``max_slots`` guards undelivered traffic, not the REL tail."""

    def test_tail_release_does_not_trip_max_slots(self, torus8):
        # One (0, 1) message at degree 1: established at 12, delivered
        # at 13, but the REL chain keeps tearing the circuit down until
        # slot 19.  A limit at the delivery time must pass -- the run
        # is complete; only bookkeeping events remain.
        requests = RequestSet.from_pairs([(0, 1)], size=4)
        result = simulate_dynamic(
            torus8, requests, 1, SimParams(max_slots=13)
        )
        assert result.completion_time == 13
        assert result.messages[0].delivered == 13

    def test_undelivered_traffic_still_raises(self, torus8):
        requests = RequestSet.from_pairs([(0, 1)], size=4)
        with pytest.raises(RuntimeError, match="max_slots"):
            simulate_dynamic(torus8, requests, 1, SimParams(max_slots=12))


def _holding_sim(num_messages: int = 1) -> _DynamicSimulator:
    topo = LinearArray(3)
    pairs = [(0, 2), (1, 2)][:num_messages]
    requests = RequestSet.from_pairs(pairs, size=4)
    return _DynamicSimulator(
        topo, requests, 1, SimParams(), protocol="holding"
    )


class TestHoldTimeoutDeadline:
    """Re-parking must not postpone the deadlock-breaking deadline."""

    def test_repark_preserves_original_deadline(self):
        sim = _holding_sim()
        link_id = sim.topology.route(0, 2)[0]
        res = _Reservation(
            rid=100, message=sim.messages[0], path=(link_id,), carried=[0]
        )
        sim.reservations[100] = res

        # Channel busy (foreign lock): the RES parks and fixes its
        # deadline relative to the *first* park time.
        sim.net.link(link_id).lock_slots([0], 999)
        sim._on_res(10, 100, 0)
        deadline = res.park_deadline
        assert deadline == 10 + sim.params.hold_timeout
        assert any(
            ev[0] == deadline and ev[2] == "park_timeout" for ev in sim.events
        )

        # A channel frees; the reservation is woken...
        freed = sim.net.link(link_id).release_locks(999)
        sim._wake_parked(20, link_id, freed)
        assert res.parked_hop == -1

        # ...but loses the race to another reservation and re-parks.
        # The deadline must survive the wake/re-park churn unchanged.
        sim.net.link(link_id).lock_slots([0], 998)
        sim._on_res(20, 100, 0)
        assert res.parked_hop == 0
        assert res.park_deadline == deadline
        timeouts = [
            ev[0] for ev in sim.events if ev[2] == "park_timeout"
        ]
        assert all(t == deadline for t in timeouts)

    def test_hop_progress_resets_deadline(self):
        sim = _holding_sim()
        link_id = sim.topology.route(0, 2)[0]
        res = _Reservation(
            rid=100, message=sim.messages[0], path=(link_id,), carried=[0]
        )
        sim.reservations[100] = res
        sim.net.link(link_id).lock_slots([0], 999)
        sim._on_res(10, 100, 0)
        assert res.park_deadline == 10 + sim.params.hold_timeout

        # The channel frees and this time the RES wins it: locking the
        # hop is progress, so the deadlock clock starts over.
        sim.net.link(link_id).release_locks(999)
        sim._wake_parked(20, link_id, 1)
        sim._on_res(20, 100, 0)
        assert res.park_deadline == -1


class TestWakeParkedFairness:
    """One freed channel wakes exactly one parked reservation."""

    def test_no_thundering_herd(self):
        sim = _holding_sim(num_messages=2)
        link_id = sim.topology.route(1, 2)[0]  # shared transit fiber
        res_a = _Reservation(
            rid=100, message=sim.messages[0], path=(link_id,), carried=[0]
        )
        res_b = _Reservation(
            rid=101, message=sim.messages[1], path=(link_id,), carried=[0]
        )
        sim.reservations[100] = res_a
        sim.reservations[101] = res_b
        sim.net.link(link_id).lock_slots([0], 999)
        sim._on_res(10, 100, 0)
        sim._on_res(11, 101, 0)
        assert list(sim.parked[link_id]) == [100, 101]

        freed = sim.net.link(link_id).release_locks(999)
        assert freed == 1
        sim._wake_parked(20, link_id, freed)

        # FIFO: the first parker wakes, the second stays parked.
        assert res_a.parked_hop == -1
        assert res_b.parked_hop == 0
        assert list(sim.parked[link_id]) == [101]
        woken = [ev for ev in sim.events if ev[2] == "res" and ev[0] == 20]
        assert len(woken) == 1

    def test_zero_freed_wakes_nobody(self):
        sim = _holding_sim(num_messages=2)
        link_id = sim.topology.route(1, 2)[0]
        res_a = _Reservation(
            rid=100, message=sim.messages[0], path=(link_id,), carried=[0]
        )
        sim.reservations[100] = res_a
        sim.net.link(link_id).lock_slots([0], 999)
        sim._on_res(10, 100, 0)
        sim._wake_parked(20, link_id, 0)
        assert res_a.parked_hop == 0
        assert list(sim.parked[link_id]) == [100]
