"""Tests for runtime fault injection and circuit recovery."""

import pytest

from repro.core.requests import RequestSet
from repro.patterns.classic import all_to_all_pattern, nearest_neighbour_2d
from repro.simulator.compiled import (
    chunks_in_window,
    compiled_completion_time,
    simulate_compiled_faulty,
)
from repro.simulator.dynamic import simulate_dynamic
from repro.simulator.dynamic.control import _DynamicSimulator
from repro.simulator.dynamic.trace import ProtocolTrace
from repro.simulator.faults import (
    FaultEvent,
    FaultSchedule,
    random_fault_schedule,
)
from repro.simulator.metrics import recovery_summary, summarize
from repro.simulator.params import SimParams
from repro.topology.faults import FaultyTopology
from repro.topology.linear import LinearArray
from repro.topology.torus import Torus2D


class TestFaultSchedule:
    def test_events_sorted_by_slot(self):
        fs = FaultSchedule.from_tuples([(30, "fail", 200), (10, "fail", 150)])
        assert [e.slot for e in fs] == [10, 30]

    def test_same_slot_restore_applies_first(self):
        # Within one slot, restores deterministically precede failures
        # regardless of input order.
        fs = FaultSchedule.from_tuples(
            [(2, "fail", 150), (5, "fail", 160), (5, "restore", 150)]
        )
        assert [(e.slot, e.action) for e in fs] == [
            (2, "fail"), (5, "restore"), (5, "fail")
        ]
        assert fs.failed_at(5) == {160}

    def test_same_slot_fail_restore_of_one_link_rejected(self):
        # Restore-first ordering makes a same-slot fail+restore of one
        # fiber a restore without a preceding failure.
        with pytest.raises(ValueError, match="preceding"):
            FaultSchedule.from_tuples([(5, "fail", 150), (5, "restore", 150)])

    def test_random_schedule_rejects_zero_repair(self, torus8):
        with pytest.raises(ValueError, match="repair_after"):
            random_fault_schedule(torus8, 1, 50, repair_after=0)

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError, match="action"):
            FaultEvent(slot=1, action="explode", link=150)

    def test_double_fail_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            FaultSchedule.from_tuples([(1, "fail", 150), (9, "fail", 150)])

    def test_restore_without_fail_rejected(self):
        with pytest.raises(ValueError, match="preceding"):
            FaultSchedule.from_tuples([(4, "restore", 150)])

    def test_failed_at(self):
        fs = FaultSchedule.from_tuples(
            [(5, "fail", 150), (10, "fail", 160), (20, "restore", 150)]
        )
        assert fs.failed_at(4) == frozenset()
        assert fs.failed_at(7) == {150}
        assert fs.failed_at(15) == {150, 160}
        assert fs.failed_at(25) == {160}

    def test_validate_rejects_pe_fibers(self, torus8):
        fs = FaultSchedule.from_tuples([(1, "fail", torus8.inject_link(0))])
        with pytest.raises(ValueError, match="transit"):
            fs.validate_for(torus8)

    def test_random_schedule_deterministic(self, torus8):
        a = random_fault_schedule(torus8, 4, 100, seed=7)
        b = random_fault_schedule(torus8, 4, 100, seed=7)
        assert a.events == b.events
        assert len(a.links()) == 4

    def test_random_schedule_repairs(self, torus8):
        fs = random_fault_schedule(torus8, 2, 50, repair_after=10, seed=1)
        assert len(fs) == 4
        assert fs.failed_at(10_000) == frozenset()


def _run_with_net(topology, requests, degree, params, faults, protocol="dropping"):
    """Run the dynamic simulator and return it (exposing the TDM net)."""
    sim = _DynamicSimulator(
        topology, requests, degree, params, None, None, protocol, faults
    )
    sim.run()
    return sim


class TestDynamicFaultRecovery:
    def test_midrun_cut_all_to_all_drains_clean(self, torus8, params):
        """The acceptance scenario: a mid-run single-link failure on the
        8x8 torus all-to-all completes with zero orphaned channels."""
        requests = all_to_all_pattern(64)
        link = torus8.route(0, 1)[1]
        faults = FaultSchedule.from_tuples([(1500, "fail", link)])
        sim = _run_with_net(torus8, requests, 2, params, faults)
        assert sim.net.orphans() == []
        assert sim.delivered_count == len(requests)
        assert sim.lost_count == 0

    def test_cut_established_circuit_recovers(self, torus8, params):
        """Cut the only circuit mid-stream: the message re-reserves on a
        detour and still delivers."""
        requests = RequestSet.from_pairs([(0, 2)], size=400)
        link = torus8.route(0, 2)[1]
        healthy = simulate_dynamic(torus8, requests, 1, params)
        cut_at = healthy.messages[0].established + 5
        faults = FaultSchedule.from_tuples([(cut_at, "fail", link)])
        result = simulate_dynamic(torus8, requests, 1, params, faults=faults)
        m = result.messages[0]
        assert m.delivered is not None
        assert result.fault_retries >= 1
        assert result.completion_time > healthy.completion_time
        assert result.fault_log[0]["requeued"] == [0]
        assert result.fault_log[0]["time_to_recover"] > 0

    def test_cut_unused_link_costs_nothing(self, torus8, params):
        """A fiber no route crosses tears down nothing."""
        requests = RequestSet.from_pairs([(0, 1)], size=4)
        far_link = torus8.route(36, 37)[1]
        faults = FaultSchedule.from_tuples([(2, "fail", far_link)])
        healthy = simulate_dynamic(torus8, requests, 1, params)
        faulted = simulate_dynamic(torus8, requests, 1, params, faults=faults)
        assert faulted.completion_time == healthy.completion_time
        assert faulted.fault_retries == 0
        assert faulted.fault_log[0]["torn"] == 0

    def test_restore_reopens_the_short_route(self, torus8, params):
        """After a restore, new attempts use the repaired fiber again."""
        requests = RequestSet.from_pairs([(0, 1)], size=4)
        link = torus8.route(0, 1)[1]
        faults = FaultSchedule.from_tuples(
            [(0, "fail", link), (1000, "restore", link)]
        )
        arrivals = [2000]  # arrives long after the repair
        healthy = simulate_dynamic(torus8, requests, 1, params)
        result = simulate_dynamic(
            torus8, requests, 1, params, faults=faults, arrivals=arrivals
        )
        assert result.messages[0].latency == healthy.messages[0].latency

    def test_partitioned_message_declared_lost(self):
        """A 2-node linear array with both forward fibers cut can never
        deliver 0 -> 1: the message must be declared lost, the network
        must still drain clean."""
        lin = LinearArray(2)
        requests = RequestSet.from_pairs([(0, 1)], size=4)
        faults = FaultSchedule.from_tuples([(0, "fail", lin.forward_link(0))])
        params = SimParams(fault_retry_limit=5)
        sim = _run_with_net(lin, requests, 1, params, faults)
        m = sim.messages[0]
        assert m.delivered is None and m.lost is not None
        assert sim.lost_count == 1
        assert sim.net.orphans() == []

    def test_prerun_fault_equals_faulty_topology(self, torus8, params):
        """A fail event at slot 0 is bit-identical to handing the
        simulator a pre-degraded FaultyTopology."""
        requests = nearest_neighbour_2d(8, 8, size=16)
        link = torus8.route(0, 1)[1]
        via_schedule = simulate_dynamic(
            torus8, requests, 2, params,
            faults=FaultSchedule.from_tuples([(0, "fail", link)]),
        )
        via_topology = simulate_dynamic(
            FaultyTopology(Torus2D(8), [link]), requests, 2, params
        )
        assert via_schedule.completion_time == via_topology.completion_time
        assert via_schedule.total_retries == via_topology.total_retries
        assert [m.delivered for m in via_schedule.messages] == [
            m.delivered for m in via_topology.messages
        ]

    def test_holding_protocol_recovers_too(self, torus8, params):
        requests = nearest_neighbour_2d(8, 8, size=32)
        link = torus8.route(0, 1)[1]
        faults = FaultSchedule.from_tuples([(20, "fail", link)])
        sim = _run_with_net(torus8, requests, 2, params, faults, "holding")
        assert sim.net.orphans() == []
        assert sim.delivered_count == len(requests)

    def test_trace_records_fault_events(self, torus8, params):
        requests = RequestSet.from_pairs([(0, 2)], size=400)
        link = torus8.route(0, 2)[1]
        trace = ProtocolTrace()
        result = simulate_dynamic(
            torus8, requests, 1, params, trace=trace,
            faults=FaultSchedule.from_tuples(
                [(20, "fail", link), (5000, "restore", link)]
            ),
        )
        assert result.messages[0].delivered is not None
        assert trace.count("link-fail") == 1
        assert trace.count("link-restore") == 1
        assert trace.count("fault-kill") == 1
        assert trace.count("established") == 2
        trace.check_wellformed()

    def test_caller_topology_never_mutated(self, torus8, params):
        """The simulator reroutes on its own wrapper; a FaultyTopology
        passed in keeps its failure set."""
        faulty = FaultyTopology(Torus2D(8))
        requests = RequestSet.from_pairs([(0, 1)], size=4)
        link = torus8.route(5, 6)[1]
        simulate_dynamic(
            faulty, requests, 1, params,
            faults=FaultSchedule.from_tuples([(2, "fail", link)]),
        )
        assert faulty.failed_links == frozenset()


class TestCompiledFaultRecovery:
    def test_no_faults_reduces_to_closed_form(self, torus8, params):
        requests = all_to_all_pattern(64)
        base = compiled_completion_time(torus8, requests, params)
        faulted = simulate_compiled_faulty(
            torus8, requests, FaultSchedule(), params
        )
        assert faulted.completion_time == base.completion_time
        assert faulted.reschedules == 0
        assert faulted.initial_degree == base.degree
        assert [m.delivered for m in faulted.messages] == [
            m.delivered for m in base.messages
        ]

    def test_midrun_cut_all_to_all_recovers(self, torus8, params):
        """Acceptance scenario, compiled side: reschedule on the
        degraded torus, pay the recompile latency, deliver everything."""
        requests = all_to_all_pattern(64)
        base = compiled_completion_time(torus8, requests, params)
        link = torus8.route(0, 1)[1]
        faults = FaultSchedule.from_tuples(
            [(base.completion_time // 2, "fail", link)]
        )
        result = simulate_compiled_faulty(torus8, requests, faults, params)
        assert all(m.delivered is not None for m in result.messages)
        assert result.lost == 0
        assert result.reschedules == 1
        assert result.completion_time > base.completion_time
        assert result.fault_log[0]["time_to_recover"] == params.recompile_latency

    def test_prerun_fault_equals_faulty_topology(self, torus8, params):
        requests = nearest_neighbour_2d(8, 8, size=16)
        link = torus8.route(0, 1)[1]
        via_schedule = simulate_compiled_faulty(
            torus8, requests,
            FaultSchedule.from_tuples([(0, "fail", link)]), params,
        )
        via_topology = compiled_completion_time(
            FaultyTopology(Torus2D(8), [link]), requests, params
        )
        assert via_schedule.completion_time == via_topology.completion_time

    def test_missed_cut_is_free(self, torus8, params):
        """A cut that touches no remaining route does not reschedule."""
        requests = RequestSet.from_pairs([(0, 1)], size=16)
        far_link = torus8.route(36, 37)[1]
        base = compiled_completion_time(torus8, requests, params)
        result = simulate_compiled_faulty(
            torus8, requests,
            FaultSchedule.from_tuples([(4, "fail", far_link)]), params,
        )
        assert result.completion_time == base.completion_time
        assert result.reschedules == 0

    def test_recompile_latency_knob(self, torus8):
        requests = all_to_all_pattern(64)
        link = torus8.route(0, 1)[1]
        faults = FaultSchedule.from_tuples([(30, "fail", link)])
        cheap = simulate_compiled_faulty(
            torus8, requests, faults, SimParams(recompile_latency=0)
        )
        slow = simulate_compiled_faulty(
            torus8, requests, faults, SimParams(recompile_latency=50)
        )
        assert slow.completion_time > cheap.completion_time
        assert slow.recompile_slots == 50

    def test_partitioned_message_lost(self):
        lin = LinearArray(2)
        requests = RequestSet.from_pairs([(0, 1), (1, 0)], size=8)
        faults = FaultSchedule.from_tuples([(4, "fail", lin.forward_link(0))])
        result = simulate_compiled_faulty(lin, requests, faults, SimParams())
        assert result.lost == 1
        delivered = [m for m in result.messages if m.delivered is not None]
        assert len(delivered) == 1  # 1 -> 0 still flows on the back fiber


class TestRecoveryMetrics:
    def test_summarize_rejects_silent_drops(self, torus8, params):
        result = simulate_dynamic(
            torus8, RequestSet.from_pairs([(0, 1)]), 1, params
        )
        result.messages[0].delivered = None
        with pytest.raises(ValueError, match="never delivered"):
            summarize(result.messages, allow_lost=True)

    def test_summarize_allows_declared_losses(self):
        lin = LinearArray(2)
        requests = RequestSet.from_pairs([(0, 1)], size=4)
        result = simulate_dynamic(
            lin, requests, 1, SimParams(fault_retry_limit=3),
            faults=FaultSchedule.from_tuples([(0, "fail", lin.forward_link(0))]),
        )
        stats = summarize(result.messages, allow_lost=True)
        assert stats["lost"] == 1.0
        assert stats["makespan"] == 0.0

    def test_recovery_summary_both_simulators(self, torus8, params):
        requests = nearest_neighbour_2d(8, 8, size=32)
        link = torus8.route(0, 1)[1]
        faults = FaultSchedule.from_tuples([(20, "fail", link)])
        dyn = recovery_summary(
            simulate_dynamic(torus8, requests, 2, params, faults=faults)
        )
        comp = recovery_summary(
            simulate_compiled_faulty(torus8, requests, faults, params)
        )
        for rec in (dyn, comp):
            assert rec["delivered"] == len(requests)
            assert rec["lost"] == 0.0
            assert rec["fault_events"] == 1.0
        assert "fault_retries" in dyn
        assert "degree_inflation" in comp and "reschedules" in comp

    def test_chunks_in_window_matches_transfer_finish(self):
        from repro.simulator.compiled import transfer_finish

        for start in range(0, 12):
            for slot in range(4):
                for chunks in (1, 2, 7):
                    finish = transfer_finish(start, slot, 4, chunks)
                    assert chunks_in_window(start, finish, slot, 4) == chunks
                    assert chunks_in_window(start, finish - 1, slot, 4) == chunks - 1


class TestFaultCampaign:
    def test_degradation_table_shape(self, torus8):
        from repro.analysis.experiments import fault_campaign

        rows = fault_campaign(
            pattern="nearest neighbour", size=8, degree=2,
            fault_counts=(0, 1), seed=3,
        )
        assert [r["faults"] for r in rows] == [0, 1]
        baseline = rows[0]
        assert baseline["compiled_slowdown_pct"] == 0.0
        assert baseline["dynamic_slowdown_pct"] == 0.0
        for row in rows:
            for col in ("compiled_ttr", "compiled_degree_inflation",
                        "dynamic_ttr", "dynamic_fault_retries",
                        "compiled_lost", "dynamic_lost"):
                assert col in row
