"""Protected recovery in the compiled fault simulator.

``recovery="protected"`` swaps to a precomputed backup register image
in ``failover_latency`` slots instead of recompiling.  These tests pin
the failover accounting (zero run-time reschedules for covered cuts),
the bounded time-to-recover, the reactive fallback for double faults,
and the restore-path regression extending PR 3's route-cache tests:
a fiber that fails, is repaired, and is followed by a *different* cut
must see two clean failovers -- no stale failed-link state may leak
into the second failover's safety check.
"""

import pytest

from repro.core import RequestSet, build_protection, get_scheduler, route_requests
from repro.core import perf
from repro.simulator.compiled import simulate_compiled_faulty
from repro.simulator.faults import FaultSchedule
from repro.simulator.metrics import recovery_summary
from repro.simulator.params import SimParams
from repro.topology.torus import Torus2D


@pytest.fixture(scope="module")
def torus():
    return Torus2D(4)


@pytest.fixture(scope="module")
def a2a():
    n = 16
    return RequestSet.from_pairs(
        [(s, d) for s in range(n) for d in range(n) if s != d]
    )


def one_cut(torus, slot=6):
    """A mid-run cut of a fiber that all-to-all certainly uses."""
    link = torus.route(0, 5)[1]
    return FaultSchedule.from_tuples([(slot, "fail", link)])


class TestProtectedFailover:
    def test_covered_cut_fails_over_without_recompiling(self, torus, a2a):
        result = simulate_compiled_faulty(
            torus, a2a, one_cut(torus), SimParams(), recovery="protected"
        )
        assert result.recovery == "protected"
        assert result.failovers == 1
        assert result.reschedules == 0
        assert result.uncovered == 0
        assert result.lost == 0
        assert all(m.delivered for m in result.messages)
        [entry] = result.fault_log
        assert entry["recovery"] == "failover"
        assert entry["delta_k"] >= 0

    def test_ttr_is_exactly_failover_latency(self, torus, a2a):
        params = SimParams(failover_latency=3)
        result = simulate_compiled_faulty(
            torus, a2a, one_cut(torus), params, recovery="protected"
        )
        [entry] = result.fault_log
        assert entry["time_to_recover"] == params.failover_latency
        assert result.failover_slots == params.failover_latency

    def test_failover_beats_reactive_recompile(self, torus, a2a):
        # Same cut, same pattern: the protected run recovers in
        # failover_latency slots, the reactive run pays the (larger)
        # recompile latency.  Both deliver everything.
        params = SimParams(recompile_latency=10, failover_latency=1)
        reactive = simulate_compiled_faulty(
            torus, a2a, one_cut(torus), params, recovery="reactive"
        )
        protected = simulate_compiled_faulty(
            torus, a2a, one_cut(torus), params, recovery="protected"
        )
        assert reactive.reschedules == 1 and reactive.lost == 0
        assert protected.failovers == 1 and protected.lost == 0
        assert (
            protected.fault_log[0]["time_to_recover"]
            < reactive.fault_log[0]["time_to_recover"]
        )

    def test_miss_leaves_schedule_alone(self, torus):
        # A cut that no live route crosses: no failover, no recompile.
        requests = RequestSet.from_pairs([(0, 1)])
        used = set(route_requests(torus, requests)[0].links)
        spare = next(
            l for l in range(torus.transit_link_base, torus.num_links)
            if l not in used
        )
        faults = FaultSchedule.from_tuples([(2, "fail", spare)])
        result = simulate_compiled_faulty(
            torus, requests, faults, SimParams(), recovery="protected"
        )
        assert result.failovers == 0
        assert result.reschedules == 0
        assert result.fault_log[0]["recovery"] == "none"

    def test_bogus_recovery_mode_rejected(self, torus, a2a):
        with pytest.raises(ValueError, match="recovery"):
            simulate_compiled_faulty(
                torus, a2a, one_cut(torus), SimParams(), recovery="bogus"
            )

    def test_perf_counters_track_failovers(self, torus, a2a):
        perf.reset()
        simulate_compiled_faulty(
            torus, a2a, one_cut(torus), SimParams(), recovery="protected"
        )
        snap = perf.snapshot()
        assert snap["protect_failovers"] == 1
        assert snap["protect_uncovered"] == 0
        assert snap["protect_build_seconds"] > 0

    def test_recovery_summary_reports_failovers(self, torus, a2a):
        result = simulate_compiled_faulty(
            torus, a2a, one_cut(torus), SimParams(), recovery="protected"
        )
        summary = recovery_summary(result)
        assert summary["failovers"] == 1
        assert summary["uncovered"] == 0


class TestExternalProtection:
    def test_prebuilt_protection_matches_internal(self, torus, a2a):
        connections = route_requests(torus, a2a)
        schedule = get_scheduler("combined")(connections, torus)
        protected = build_protection(torus, connections, schedule)
        internal = simulate_compiled_faulty(
            torus, a2a, one_cut(torus), SimParams(), recovery="protected"
        )
        external = simulate_compiled_faulty(
            torus, a2a, one_cut(torus), SimParams(),
            recovery="protected", protection=protected,
        )
        assert external.failovers == internal.failovers == 1
        assert external.completion_time == internal.completion_time
        assert external.fault_log == internal.fault_log

    def test_foreign_topology_protection_rejected(self, torus, a2a):
        other = Torus2D(8)
        reqs8 = RequestSet.from_pairs([(0, 1), (1, 2)])
        connections = route_requests(other, reqs8)
        schedule = get_scheduler("combined")(connections, other)
        protected = build_protection(
            other, connections, schedule,
            scenarios=[other.transit_link_base],
        )
        with pytest.raises(ValueError, match="protection built for"):
            simulate_compiled_faulty(
                torus, a2a, one_cut(torus), SimParams(),
                recovery="protected", protection=protected,
            )


class TestRestoreThenSecondFault:
    """The protected extension of PR 3's ``TestRestoreInvalidation``:
    repaired fibers must drop out of the failover safety check."""

    def two_phase_faults(self, torus, a2a):
        conns = route_requests(torus, a2a)
        fiber_a = torus.route(0, 5)[1]
        # A fiber on a different pair's route, distinct from A.
        fiber_b = next(
            l for l in torus.route(3, 9)[1:-1] if l != fiber_a
        )
        return fiber_a, fiber_b

    def test_fail_restore_then_second_cut_both_fail_over(self, torus, a2a):
        fiber_a, fiber_b = self.two_phase_faults(torus, a2a)
        faults = FaultSchedule.from_tuples([
            (5, "fail", fiber_a),
            (12, "restore", fiber_a),
            (18, "fail", fiber_b),
        ])
        result = simulate_compiled_faulty(
            torus, RequestSet.from_pairs(
                [(s, d) for s in range(16) for d in range(16) if s != d],
                size=2,
            ),
            faults, SimParams(), recovery="protected",
        )
        # Fiber A was repaired before B failed, so B's single-fault
        # plan is safe: two failovers, zero recompiles, zero lost.
        assert result.failovers == 2
        assert result.reschedules == 0
        assert result.uncovered == 0
        assert result.lost == 0
        assert [e["recovery"] for e in result.fault_log] == [
            "failover", "failover",
        ]

    def test_concurrent_second_cut_falls_back_when_unsafe(self, torus):
        # Without the restore, the second cut arrives while A is still
        # down.  Single-fault plans only guarantee safety against one
        # cut: the simulator must either prove B's backup avoids A and
        # fail over, or fall back to a reactive recompile -- and in
        # every case deliver all messages.
        a2a = RequestSet.from_pairs(
            [(s, d) for s in range(16) for d in range(16) if s != d],
            size=2,
        )
        fiber_a, fiber_b = self.two_phase_faults(torus, a2a)
        faults = FaultSchedule.from_tuples([
            (5, "fail", fiber_a),
            (18, "fail", fiber_b),
        ])
        result = simulate_compiled_faulty(
            torus, a2a, faults, SimParams(), recovery="protected"
        )
        hits = [e for e in result.fault_log if e["recovery"] != "none"]
        assert result.failovers + result.reschedules == len(hits)
        assert result.uncovered == result.reschedules
        assert result.lost == 0
        assert all(m.delivered for m in result.messages)
