"""Tests for epoch-boundary schedule swaps in the compiled simulator."""

import pytest

from repro.core.requests import RequestSet
from repro.patterns.random_patterns import random_pattern
from repro.simulator.compiled import (
    EpochUpdate,
    compiled_completion_time,
    simulate_compiled_epochs,
)
from repro.simulator.params import SimParams

RING8 = RequestSet.from_pairs([(i, (i + 1) % 8) for i in range(8)])


class TestNoUpdates:
    def test_reduces_to_compiled_model(self, torus8, params):
        """With no updates the epoch simulator is the compiled model."""
        for n, seed in ((30, 0), (120, 1)):
            requests = random_pattern(64, n, seed=seed, size=13)
            static = compiled_completion_time(torus8, requests, params)
            epoch = simulate_compiled_epochs(torus8, requests, [], params)
            assert epoch.completion_time == static.completion_time
            assert epoch.initial_degree == static.degree
            assert epoch.epochs == 0 and epoch.cancelled == 0

    def test_epoch_log_empty(self, torus8, params):
        res = simulate_compiled_epochs(torus8, RING8, [], params)
        assert res.epoch_log == [] and res.amend_slots == 0


class TestEpochUpdates:
    def test_added_message_is_delivered(self, torus8, params):
        res = simulate_compiled_epochs(
            torus8, RING8, [EpochUpdate(slot=4, add=((0, 5, 13),))], params,
        )
        added = res.messages[-1]
        assert (added.src, added.dst, added.size) == (0, 5, 13)
        assert added.delivered is not None
        assert added.first_attempt >= 4
        assert res.epochs == 1
        assert res.epoch_log[0]["added"] == 1

    def test_removed_inflight_message_is_cancelled(self, torus8, params):
        # Large sizes keep everything in flight at slot 2.
        big = RequestSet.from_pairs(
            [(i, (i + 1) % 8) for i in range(8)], size=64
        )
        res = simulate_compiled_epochs(
            torus8, big, [EpochUpdate(slot=2, remove=(0,))], params,
        )
        assert res.cancelled == 1
        assert res.messages[0].delivered is None
        assert res.messages[0].lost is not None
        assert all(
            m.delivered is not None for m in res.messages if m.mid != 0
        )

    def test_remove_unknown_mid_raises(self, torus8, params):
        with pytest.raises(ValueError):
            simulate_compiled_epochs(
                torus8, RING8, [EpochUpdate(slot=1, remove=(99,))], params,
            )

    def test_amend_latency_pauses_the_frame(self, torus8):
        big = RequestSet.from_pairs([(0, 1)], size=64)
        update = [EpochUpdate(slot=2, add=((2, 3, 1),))]
        fast = simulate_compiled_epochs(
            torus8, big, update, SimParams(amend_latency=0),
        )
        slow = simulate_compiled_epochs(
            torus8, big, update, SimParams(amend_latency=32),
        )
        assert slow.completion_time > fast.completion_time

    def test_degree_tracking_and_validation(self, torus8, params):
        updates = [
            EpochUpdate(slot=3, add=((0, 9, 8), (1, 10, 8))),
            EpochUpdate(slot=9, remove=(0, 1)),
            EpochUpdate(slot=15, add=((5, 2, 4),)),
        ]
        res = simulate_compiled_epochs(
            torus8, RING8, updates, params, validate=True,
        )
        assert res.epochs == 3
        assert res.max_degree >= res.final_degree
        assert [e["epoch"] for e in res.epoch_log] == [1, 2, 3]
        assert all(e["degree"] >= 1 for e in res.epoch_log)

    def test_updates_applied_in_slot_order(self, torus8, params):
        # Deliberately unsorted input: the log must come out ordered.
        updates = [
            EpochUpdate(slot=12, add=((3, 7, 2),)),
            EpochUpdate(slot=2, add=((0, 9, 2),)),
        ]
        res = simulate_compiled_epochs(torus8, RING8, updates, params)
        assert [e["slot"] for e in res.epoch_log] == [2, 12]

    def test_makespan_property(self, torus8, params):
        res = simulate_compiled_epochs(
            torus8, RING8, [EpochUpdate(slot=4, add=((0, 5, 4),))], params,
        )
        assert res.makespan == res.completion_time


class TestParamsValidation:
    def test_negative_amend_latency_rejected(self):
        with pytest.raises(ValueError, match="amend_latency"):
            SimParams(amend_latency=-1)

    def test_default_is_one_slot(self):
        assert SimParams().amend_latency == 1
