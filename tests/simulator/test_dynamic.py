"""Tests for the dynamic path-reservation simulator."""

import pytest

from repro.core.requests import RequestSet
from repro.patterns.applications import gs_pattern
from repro.patterns.classic import ring_pattern
from repro.patterns.random_patterns import random_pattern
from repro.simulator.compiled import compiled_completion_time
from repro.simulator.dynamic import simulate_dynamic
from repro.simulator.params import SimParams


class TestSingleMessage:
    def test_timing_breakdown(self, torus8, params):
        """One message, no contention: latency = RES + ACK round trip
        plus the transfer."""
        requests = RequestSet.from_pairs([(0, 1)], size=4)
        result = simulate_dynamic(torus8, requests, 1, params)
        m = result.messages[0]
        hops = len(torus8.route(0, 1))  # 3 links
        round_trip = 2 * hops * params.control_hop_latency
        assert m.established == round_trip
        assert m.delivered == round_trip + 1  # one chunk, degree 1
        assert m.retries == 0

    def test_longer_path_costs_more_control(self, torus8, params):
        near = simulate_dynamic(torus8, RequestSet.from_pairs([(0, 1)]), 1, params)
        far = simulate_dynamic(
            torus8, RequestSet.from_pairs([(0, torus8.node(4, 4))]), 1, params
        )
        assert far.completion_time > near.completion_time

    def test_transfer_slowdown_with_degree(self, torus8, params):
        requests = RequestSet.from_pairs([(0, 1)], size=64)
        t1 = simulate_dynamic(torus8, requests, 1, params).completion_time
        t10 = simulate_dynamic(torus8, requests, 10, params).completion_time
        assert t10 > t1  # 1/K of the bandwidth once established


class TestContention:
    def test_same_source_serializes_at_degree_one(self, torus8, params):
        requests = RequestSet.from_pairs([(0, 1), (0, 2)], size=40)
        result = simulate_dynamic(torus8, requests, 1, params)
        a, b = result.messages
        # The injection fiber has one channel: transfers cannot overlap.
        first_done = min(a.delivered, b.delivered)
        second_established = max(a.established, b.established)
        assert second_established >= first_done - 2 * params.control_hop_latency
        assert result.total_retries > 0

    def test_degree_two_overlaps_same_source(self, torus8, params):
        requests = RequestSet.from_pairs([(0, 1), (0, 2)], size=40)
        t1 = simulate_dynamic(torus8, requests, 1, params).completion_time
        t2 = simulate_dynamic(torus8, requests, 2, params).completion_time
        assert t2 < t1

    def test_all_messages_delivered_dense(self, torus8, params):
        requests = random_pattern(64, 800, seed=6, size=4)
        for degree in (1, 5):
            result = simulate_dynamic(torus8, requests, degree, params)
            assert all(m.delivered is not None for m in result.messages)

    def test_retry_counting(self, torus8, params):
        requests = RequestSet.from_pairs([(0, 1), (0, 2), (0, 3)], size=80)
        result = simulate_dynamic(torus8, requests, 1, params)
        assert result.total_retries == sum(m.retries for m in result.messages)


class TestDeterminism:
    def test_same_seed_same_result(self, torus8):
        requests = random_pattern(64, 300, seed=8, size=8)
        a = simulate_dynamic(torus8, requests, 2, SimParams(seed=3))
        b = simulate_dynamic(torus8, requests, 2, SimParams(seed=3))
        assert a.completion_time == b.completion_time
        assert [m.delivered for m in a.messages] == [m.delivered for m in b.messages]

    def test_different_seed_may_differ(self, torus8):
        requests = random_pattern(64, 300, seed=8, size=8)
        times = {
            simulate_dynamic(torus8, requests, 1, SimParams(seed=s)).completion_time
            for s in range(4)
        }
        assert len(times) > 1  # backoff randomisation matters under contention


class TestPaperShape:
    def test_compiled_beats_dynamic_everywhere(self, torus8, params):
        """The paper's headline: compiled < dynamic for every pattern
        and every multiplexing degree."""
        for requests in (gs_pattern(64).requests, ring_pattern(64, size=16)):
            compiled = compiled_completion_time(torus8, requests, params).completion_time
            for degree in (1, 2, 5, 10):
                dynamic = simulate_dynamic(torus8, requests, degree, params).completion_time
                assert compiled < dynamic

    def test_gs_dynamic_matches_paper_within_tolerance(self, torus8, params):
        """Calibration anchor: dynamic GS 64x64 lands near the paper's
        105/118/171/251 column."""
        requests = gs_pattern(64).requests
        paper = {1: 105, 2: 118, 5: 171, 10: 251}
        for degree, expected in paper.items():
            got = simulate_dynamic(torus8, requests, degree, params).completion_time
            assert abs(got - expected) / expected < 0.35

    def test_max_slots_guard(self, torus8):
        requests = random_pattern(64, 100, seed=0, size=1000)
        with pytest.raises(RuntimeError, match="max_slots"):
            simulate_dynamic(torus8, requests, 1, SimParams(max_slots=50))
