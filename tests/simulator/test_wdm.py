"""Tests for the WDM extension models."""

import pytest

from repro.core.requests import RequestSet
from repro.patterns.classic import nearest_neighbour_2d, ring_pattern
from repro.simulator.compiled import compiled_completion_time
from repro.simulator.params import SimParams
from repro.simulator.wdm import (
    simulate_dynamic_wdm,
    wdm_compiled_completion_time,
)


class TestCompiledWDM:
    def test_per_wavelength_time_independent_of_degree(self, torus8, params):
        """Full-bandwidth wavelengths: makespan = startup + largest
        transfer, no matter how many wavelengths the pattern needs."""
        sparse = ring_pattern(64, size=64)          # degree 2
        dense = nearest_neighbour_2d(8, 8, size=64)  # degree 4
        a = wdm_compiled_completion_time(torus8, sparse, params)
        b = wdm_compiled_completion_time(torus8, dense, params)
        assert a.num_wavelengths < b.num_wavelengths
        assert a.completion_time == b.completion_time == params.compiled_startup + 16

    def test_wdm_beats_tdm_with_parallel_transmitters(self, torus8, params):
        requests = nearest_neighbour_2d(8, 8, size=64)
        tdm = compiled_completion_time(torus8, requests, params)
        wdm = wdm_compiled_completion_time(torus8, requests, params)
        assert wdm.completion_time < tdm.completion_time

    def test_single_transmitter_serialises_per_source(self, torus8, params):
        requests = nearest_neighbour_2d(8, 8, size=64)  # 4 sends per node
        wdm = wdm_compiled_completion_time(
            torus8, requests, params, transmitters="single"
        )
        # 4 sends x 16 chunks each, back to back.
        assert wdm.completion_time == params.compiled_startup + 4 * 16

    def test_single_transmitter_equals_tdm_for_uniform_stencil(self, torus8, params):
        """With one transmitter, WDM's serialisation mirrors TDM's
        degree-4 frame on the uniform stencil: same makespan."""
        requests = nearest_neighbour_2d(8, 8, size=64)
        tdm = compiled_completion_time(torus8, requests, params)
        wdm = wdm_compiled_completion_time(
            torus8, requests, params, transmitters="single"
        )
        assert abs(wdm.completion_time - tdm.completion_time) <= tdm.degree

    def test_bad_transmitter_model(self, torus8, params):
        with pytest.raises(ValueError):
            wdm_compiled_completion_time(
                torus8, ring_pattern(64), params, transmitters="quantum"
            )

    def test_all_messages_timestamped(self, torus8, params):
        for model in ("per-wavelength", "single"):
            result = wdm_compiled_completion_time(
                torus8, ring_pattern(64, size=8), params, transmitters=model
            )
            assert all(m.delivered is not None for m in result.messages)
            assert all(m.slot is not None for m in result.messages)


class TestDynamicWDM:
    def test_transfer_faster_than_tdm(self, torus8, params):
        """Same protocol, continuous transfer: a single large message
        finishes chunks*(K-1) slots earlier than on TDM at degree K."""
        from repro.simulator.dynamic import simulate_dynamic

        requests = RequestSet.from_pairs([(0, 1)], size=400)
        tdm = simulate_dynamic(torus8, requests, 5, params)
        wdm = simulate_dynamic_wdm(torus8, requests, 5, params)
        assert wdm.messages[0].established == tdm.messages[0].established
        assert wdm.completion_time < tdm.completion_time

    def test_contention_still_present(self, torus8, params):
        requests = RequestSet.from_pairs([(0, 1), (0, 2), (0, 3)], size=80)
        result = simulate_dynamic_wdm(torus8, requests, 1, params)
        assert result.total_retries > 0
        assert all(m.delivered is not None for m in result.messages)

    def test_compiled_wdm_beats_dynamic_wdm(self, torus8, params):
        requests = nearest_neighbour_2d(8, 8, size=16)
        compiled = wdm_compiled_completion_time(torus8, requests, params)
        dynamic = simulate_dynamic_wdm(torus8, requests, 4, params)
        assert compiled.completion_time < dynamic.completion_time
