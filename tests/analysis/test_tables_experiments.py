"""Tests for the experiment drivers and table rendering."""

import pytest

from repro.analysis import experiments as exp
from repro.analysis.tables import format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert lines[0].endswith("bb")
        assert "2.5" in out and "3.2" in out  # one-decimal floats

    def test_title(self):
        assert format_table(["x"], [[1]], title="T").startswith("T\n")

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out


class TestTable1Driver:
    def test_small_run_shape(self):
        rows = exp.table1(connection_counts=(100, 400), patterns_per_row=2, seed=0)
        assert [r["connections"] for r in rows] == [100.0, 400.0]
        for r in rows:
            assert r["combined"] <= r["greedy"]
            assert r["combined"] <= r["coloring"]
            assert r["combined"] <= r["aapc"]
            assert 0 <= r["improvement_pct"] < 100

    def test_deterministic(self):
        a = exp.table1(connection_counts=(200,), patterns_per_row=2, seed=1)
        b = exp.table1(connection_counts=(200,), patterns_per_row=2, seed=1)
        assert a == b


class TestTable2Driver:
    def test_bins_cover_everything(self):
        rows = exp.table2(samples=30, seed=0)
        total = sum(r["patterns"] for r in rows)
        assert total <= 30  # identical src/dst distributions are skipped
        assert total >= 25

    def test_values_when_populated(self):
        rows = exp.table2(samples=30, seed=0)
        for r in rows:
            if r["patterns"] > 0:
                assert r["combined"] <= r["greedy"] + 1e-9


class TestTable3Driver:
    def test_patterns_present(self):
        rows = exp.table3(greedy_orders=2)
        assert {r["pattern"] for r in rows} == set(exp.PAPER_TABLE3)

    def test_connection_counts_match_paper(self):
        for r in exp.table3(greedy_orders=1):
            assert r["connections"] == exp.PAPER_TABLE3[r["pattern"]][0]


class TestTable45Drivers:
    def test_table4_inventory(self):
        rows = exp.table4()
        assert len(rows) == 7
        assert rows[0]["pattern"] == "GS"

    def test_table5_small(self):
        rows = exp.table5(gs_grids=(64,), p3m_grids=(32,), degrees=(1, 2))
        for r in rows:
            assert r["compiled"] < r["dynamic_1"]
            assert r["compiled"] < r["dynamic_2"]

    def test_workload_labels_match_paper_keys(self):
        rows = exp.table5_workloads()
        keys = {(name, problem) for name, problem, _ in rows}
        # P3M 3 == P3M 2 in the paper's table; we enumerate 1, 2, 4, 5.
        expected = {k for k in exp.PAPER_TABLE5}
        assert keys == expected


class TestFigures:
    def test_fig1(self):
        out = exp.fig1()
        assert out["conflict_free"] is True
        assert out["connections"] == 5

    def test_fig3(self):
        out = exp.fig3()
        assert out["greedy_natural_order"] == 3
        assert out["greedy_best_order"] == 2


class TestAblation:
    def test_runs_all_schedulers(self):
        rows = exp.ablation_schedulers(
            connection_counts=(200,), patterns_per_row=1,
            schedulers=("greedy", "coloring", "dsatur"),
        )
        assert set(rows[0]) == {"connections", "greedy", "coloring", "dsatur"}
