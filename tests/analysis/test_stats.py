"""Tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    _normal_quantile,
    mean_ci,
    mean_std,
    relative_error,
    within,
)


class TestMeanStd:
    def test_known_values(self):
        mean, std = mean_std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert mean == 5.0
        assert std == pytest.approx(2.138, abs=1e-3)

    def test_single_value(self):
        assert mean_std([3.0]) == (3.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_std([])


class TestMeanCI:
    def test_halfwidth_shrinks_with_n(self):
        small = mean_ci([1.0, 2.0, 3.0, 4.0])[1]
        large = mean_ci([1.0, 2.0, 3.0, 4.0] * 25)[1]
        assert large < small

    def test_zero_for_single_sample(self):
        assert mean_ci([5.0]) == (5.0, 0.0)

    def test_confidence_validated(self):
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], confidence=1.5)

    def test_95_uses_z_1_96(self):
        values = [0.0, 2.0] * 50
        mean, hw = mean_ci(values)
        _, std = mean_std(values)
        assert hw == pytest.approx(1.96 * std / math.sqrt(100), rel=1e-3)


class TestNormalQuantile:
    @pytest.mark.parametrize("p,z", [(0.5, 0.0), (0.975, 1.959964),
                                     (0.995, 2.575829), (0.025, -1.959964)])
    def test_reference_points(self, p, z):
        assert _normal_quantile(p) == pytest.approx(z, abs=1e-4)

    @given(st.floats(0.001, 0.999))
    def test_antisymmetric(self, p):
        assert _normal_quantile(p) == pytest.approx(-_normal_quantile(1 - p), abs=1e-6)

    @given(st.floats(0.01, 0.99), st.floats(0.01, 0.99))
    def test_monotone(self, p, q):
        if p < q:
            assert _normal_quantile(p) <= _normal_quantile(q)

    def test_domain(self):
        with pytest.raises(ValueError):
            _normal_quantile(0.0)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110, 100) == pytest.approx(0.1)

    def test_zero_reference(self):
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == math.inf

    def test_within(self):
        assert within(95, 100, 0.1)
        assert not within(80, 100, 0.1)
