"""Tests for the process-parallel sweep driver."""

import pytest

from repro.analysis import experiments as exp
from repro.analysis.parallel import default_workers, map_tasks, resolve_workers
from repro.core import perf


def _square(x):
    return x * x


def _schedule_small(seed):
    """A top-level task fn touching the schedulers and the route cache."""
    from repro.core.coloring import coloring_schedule
    from repro.core.paths import route_requests
    from repro.patterns.random_patterns import random_pattern
    from repro.topology.torus import Torus2D

    topo = Torus2D(4)
    conns = route_requests(topo, random_pattern(16, 30, seed=seed))
    return coloring_schedule(conns).degree


class TestResolveWorkers:
    def test_passthrough(self):
        assert resolve_workers(None) is None
        assert resolve_workers(3) == 3
        assert resolve_workers("2") == 2

    def test_auto(self):
        n = resolve_workers("auto")
        assert n == default_workers()
        assert n >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestMapTasks:
    def test_serial_equals_parallel(self):
        tasks = list(range(8))
        assert map_tasks(_square, tasks) == map_tasks(_square, tasks, workers=2)

    def test_results_in_task_order(self):
        assert map_tasks(_square, [3, 1, 2], workers=2) == [9, 1, 4]

    def test_scheduling_tasks_identical_and_counters_merged(self):
        seeds = [11, 12, 13, 14]
        serial = map_tasks(_schedule_small, seeds)
        perf.reset()
        parallel = map_tasks(_schedule_small, seeds, workers=2)
        assert parallel == serial
        # Worker snapshots were merged back: one adjacency build per
        # task, and every task routed its pattern.
        assert perf.COUNTERS.adjacency_builds == len(seeds)
        assert perf.COUNTERS.route_cache_misses > 0


class TestDriverParity:
    """The table drivers give workers-independent numbers."""

    def test_table1(self, torus8):
        kwargs = dict(connection_counts=(400,), patterns_per_row=2, seed=5)
        assert exp.table1(workers=2, **kwargs) == exp.table1(**kwargs)

    def test_table2(self, torus8):
        kwargs = dict(samples=4, seed=5)
        assert exp.table2(workers=2, **kwargs) == exp.table2(**kwargs)


class TestCacheBenchmark:
    def test_cold_warm_report(self):
        from repro.analysis.perfbench import cache_benchmark
        from repro.topology.torus import Torus2D

        report = cache_benchmark(repeats=1, topology=Torus2D(4))
        assert report["cold_seconds"] > 0
        assert report["warm_seconds"] > 0
        # The headline property (asserted at >=10x on the 8x8 instance
        # by the CI perf gate; kept loose here for tiny instances).
        assert report["speedup"] > 1.0
        assert report["cache_stats"]["misses"] == 1
