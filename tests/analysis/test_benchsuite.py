"""The declarative bench harness: suite validation, assertion engine,
regression-vs-baseline logic, and the end-to-end run/compare/update
workflow on tiny cases."""

import json

import pytest

from repro.analysis import benchsuite as bs


def suite_doc(cases, defaults=None):
    doc = {"schema": bs.SUITE_SCHEMA, "name": "t", "cases": cases}
    if defaults is not None:
        doc["defaults"] = defaults
    return doc


KCASE = {"name": "k", "kind": "kernel", "torus": 4, "scheduler": "greedy"}


# ----------------------------------------------------------------------
# suite validation
# ----------------------------------------------------------------------

def test_validate_accepts_minimal_suite():
    assert bs.validate_suite(suite_doc([dict(KCASE)]))["name"] == "t"


@pytest.mark.parametrize("mutate, fragment", [
    (lambda d: d.pop("schema"), "schema"),
    (lambda d: d.update(schema="repro-bench/999"), "schema"),
    (lambda d: d.update(name=""), "name"),
    (lambda d: d.update(cases=[]), "cases"),
    (lambda d: d.update(cases="nope"), "cases"),
    (lambda d: d.update(cases=[{"kind": "kernel"}]), "name"),
    (lambda d: d.update(cases=[dict(KCASE, kind="nope")]), "kind"),
    (lambda d: d.update(cases=[dict(KCASE), dict(KCASE)]), "duplicate"),
    (lambda d: d.update(defaults={"assert": {"max_banana": 1}}), "unknown rule"),
    (lambda d: d.update(defaults={"assert": {"max_seconds": "fast"}}), "number"),
    (lambda d: d.update(
        defaults={"assert": {"max_seconds": {"value": 1, "severity": "fatal"}}}
    ), "severity"),
    (lambda d: d.update(
        defaults={"assert": {"max_seconds": {"severity": "error"}}}
    ), "value"),
])
def test_validate_rejects_malformed_suites(mutate, fragment):
    doc = suite_doc([dict(KCASE)])
    mutate(doc)
    with pytest.raises(bs.SuiteError, match=fragment):
        bs.validate_suite(doc)


def test_load_suite_rejects_bad_json(tmp_path):
    path = tmp_path / "s.json"
    path.write_text("{not json")
    with pytest.raises(bs.SuiteError, match="not valid JSON"):
        bs.load_suite(str(path))
    with pytest.raises(bs.SuiteError, match="cannot read"):
        bs.load_suite(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# default/override merging
# ----------------------------------------------------------------------

def test_merge_assertions_case_overrides_suite_default():
    defaults = {"assert": {"max_seconds": 10.0, "max_degree": 100}}
    case = {"assert": {"max_seconds": {"value": 2.0, "severity": "warning"}}}
    merged = bs.merge_assertions(defaults, case)
    assert merged["max_seconds"] == {"value": 2.0, "severity": "warning"}
    # untouched default survives, normalized with error severity
    assert merged["max_degree"] == {"value": 100, "severity": "error"}


def test_merged_params_layering():
    params = bs._merged_params(
        {"repeats": 5, "torus": 8, "assert": {"max_seconds": 1}},
        {"name": "x", "torus": 4},
    )
    assert params["torus"] == 4 and params["repeats"] == 5
    assert "assert" not in params


# ----------------------------------------------------------------------
# assertion engine
# ----------------------------------------------------------------------

def test_evaluate_pass_fail_and_severities():
    metrics = {"seconds": 2.0, "throughput": 50.0, "degree": 8}
    rules = {
        "max_seconds": {"value": 1.0, "severity": "error"},
        "min_throughput": {"value": 10.0, "severity": "error"},
        "max_degree": {"value": 4, "severity": "warning"},
    }
    v = bs.evaluate_case("kernel", metrics, rules, baseline=None)
    by_rule = {a["rule"]: a for a in v["assertions"]}
    assert not by_rule["max_seconds"]["passed"]
    assert by_rule["min_throughput"]["passed"]
    assert not by_rule["max_degree"]["passed"]
    # only the error-severity failure gates; the warning one is counted
    assert v["errors"] == 1 and v["warnings"] == 1 and not v["passed"]


def test_evaluate_missing_metric_fails_the_rule():
    v = bs.evaluate_case(
        "kernel", {"seconds": 1.0},
        {"min_speedup": {"value": 2.0, "severity": "error"}},
        baseline=None,
    )
    (a,) = v["assertions"]
    assert not a["passed"] and "no 'speedup' metric" in a["detail"]


def test_regression_no_baseline_is_passing_warning():
    v = bs.evaluate_case(
        "kernel", {"seconds": 1.0},
        {"max_regression_pct": {"value": 10.0, "severity": "error"}},
        baseline=None,
    )
    (a,) = v["assertions"]
    assert a["passed"] and a["skipped"] and v["warnings"] == 1
    assert v["passed"]


def test_regression_within_and_beyond_limit():
    rules = {"max_regression_pct": {"value": 10.0, "severity": "error"}}
    base = {"seconds": 1.0, "throughput": 100.0}
    ok = bs.evaluate_case(
        "kernel", {"seconds": 1.05, "throughput": 96.0}, rules, base
    )
    assert ok["passed"] and ok["errors"] == 0
    slow = bs.evaluate_case(
        "kernel", {"seconds": 1.5, "throughput": 100.0}, rules, base
    )
    (a,) = slow["assertions"]
    assert not slow["passed"] and a["metric"] == "seconds"
    assert a["value"] == pytest.approx(50.0)
    # higher-is-better direction: a throughput drop is the regression
    drop = bs.evaluate_case(
        "kernel", {"seconds": 1.0, "throughput": 50.0}, rules, base
    )
    (a,) = drop["assertions"]
    assert not drop["passed"] and a["metric"] == "throughput"


def test_regression_uses_kind_specific_metrics():
    rules = {"max_regression_pct": {"value": 10.0, "severity": "error"}}
    # cache regression watches warm_seconds/speedup, not seconds
    v = bs.evaluate_case(
        "cache", {"seconds": 99.0, "warm_seconds": 1.0, "speedup": 20.0},
        rules, {"seconds": 1.0, "warm_seconds": 1.0, "speedup": 20.0},
    )
    assert v["passed"]
    v = bs.evaluate_case(
        "cache", {"warm_seconds": 2.0, "speedup": 20.0},
        rules, {"warm_seconds": 1.0, "speedup": 20.0},
    )
    assert not v["passed"]


# ----------------------------------------------------------------------
# end-to-end: run, baseline round trip, compare
# ----------------------------------------------------------------------

def tiny_suite():
    return bs.validate_suite(suite_doc(
        [
            {"name": "4x4-greedy", "kind": "kernel", "torus": 4,
             "scheduler": "greedy", "kernel": "bitmask",
             "assert": {"max_seconds": 60.0, "min_throughput": 1.0}},
            {"name": "4x4-fastpath", "kind": "kernel", "torus": 4,
             "scheduler": "fastpath",
             "assert": {"max_optimality_ratio": 2.0}},
        ],
        defaults={"repeats": 1, "assert": {"max_regression_pct": 50.0}},
    ))


def test_run_suite_produces_metrics_and_validation():
    report = bs.run_suite(tiny_suite())
    assert report["schema"] == bs.REPORT_SCHEMA
    assert report["summary"]["gate_ok"]
    by_name = {c["name"]: c for c in report["cases"]}
    m = by_name["4x4-greedy"]["metrics"]
    assert m["connections"] == 4 * 4 * 15 + 0  # 16 nodes all-to-all = 240
    assert m["connections"] == 240
    assert m["repeats"] == 1 and m["seconds"] > 0
    assert m["throughput"] == pytest.approx(240 / m["seconds"])
    # no baseline yet: the regression rule warns but passes
    assert by_name["4x4-greedy"]["validation"]["warnings"] == 1
    # header provenance rides along
    assert report["header"]["generator"] == "repro-tdm bench"
    assert "python" in report["header"] and "git" in report["header"]


def test_run_suite_only_filter_and_unknown_name():
    report = bs.run_suite(tiny_suite(), only=["4x4-fastpath"])
    assert [c["name"] for c in report["cases"]] == ["4x4-fastpath"]
    with pytest.raises(bs.SuiteError, match="unknown case"):
        bs.run_suite(tiny_suite(), only=["nope"])


def test_baseline_roundtrip_and_compare(tmp_path):
    report = bs.run_suite(tiny_suite())
    written = bs.update_baselines(report, str(tmp_path))
    assert written == [str(tmp_path / "BENCH_kernel.json")]
    doc = json.loads((tmp_path / "BENCH_kernel.json").read_text())
    assert doc["schema"] == bs.BASELINE_SCHEMA
    assert set(doc["cases"]) == {"4x4-greedy", "4x4-fastpath"}

    baselines = bs.load_baselines(str(tmp_path))
    again = bs.reevaluate(report, baselines)
    assert again["summary"]["gate_ok"]
    # self-comparison drifts 0%: no warnings left on the kernel cases
    assert again["summary"]["warnings"] == 0

    # a 10x slowdown against the committed baseline breaches the gate
    doc["cases"]["4x4-greedy"]["seconds"] /= 10.0
    (tmp_path / "BENCH_kernel.json").write_text(json.dumps(doc))
    regressed = bs.reevaluate(report, bs.load_baselines(str(tmp_path)))
    assert not regressed["summary"]["gate_ok"]


def test_update_baselines_merges_instead_of_clobbering(tmp_path):
    path = tmp_path / "BENCH_kernel.json"
    path.write_text(json.dumps({
        "schema": bs.BASELINE_SCHEMA,
        "cases": {"other-case": {"seconds": 1.0}},
    }))
    report = bs.run_suite(tiny_suite(), only=["4x4-fastpath"])
    bs.update_baselines(report, str(tmp_path))
    cases = json.loads(path.read_text())["cases"]
    assert set(cases) == {"other-case", "4x4-fastpath"}


def test_reevaluate_rejects_foreign_documents():
    with pytest.raises(bs.SuiteError, match="schema"):
        bs.reevaluate({"schema": "nope", "cases": []})
    with pytest.raises(bs.SuiteError, match="schema"):
        bs.update_baselines({"schema": "nope", "cases": []})


# ----------------------------------------------------------------------
# case runners
# ----------------------------------------------------------------------

def test_kernel_case_generic_pattern():
    m = bs.run_kernel_case({
        "torus": 4, "pattern": "ring", "scheduler": "greedy",
        "kernel": "set", "repeats": 2,
    })
    assert m["connections"] == 32 and m["degree"] >= 1  # bidirectional ring
    assert m["repeats"] == 2 and m["stddev_seconds"] >= 0.0
    assert "optimality_ratio" not in m  # lower bound is all-to-all only


def test_kernel_case_alltoall_optimality():
    m = bs.run_kernel_case({
        "torus": 4, "scheduler": "fastpath", "repeats": 1,
    })
    assert m["lower_bound"] >= 15
    assert m["optimality_ratio"] == pytest.approx(
        m["degree"] / m["lower_bound"], abs=1e-3
    )
    assert m["scheduler"].startswith("fastpath[")


def test_kernel_case_unknown_pattern_or_scheduler():
    with pytest.raises(bs.SuiteError, match="pattern"):
        bs.run_kernel_case({"torus": 4, "pattern": "banana"})
    with pytest.raises(bs.SuiteError, match="scheduler"):
        bs.run_kernel_case(
            {"torus": 4, "pattern": "ring", "scheduler": "fastpath"}
        )


def test_faults_case_protected_metrics():
    m = bs.run_faults_case({
        "torus": 4, "pattern": "nearest neighbour", "faults": [0, 1],
        "recovery": "protected", "size": 2,
    })
    assert m["fault_counts"] == [0, 1]
    assert m["ttr"] >= 0 and m["lost"] >= 0 and m["seconds"] > 0


def test_farm_case_metrics():
    m = bs.run_farm_case({
        "farms": [1, 2], "requests": 8, "concurrency": 2,
        "replication": 1, "torus": 4, "pairs": 4, "warm_patterns": 1,
        "workers": 0, "scheduler": "greedy", "service_floor": 0.0,
    })
    assert m["farms"] == [1, 2]
    assert m["completed"] == 16 and m["failed"] == 0
    assert m["scaling"] > 0 and m["qps"] > 0 and m["seconds"] > 0
    assert len(m["qps_per_size"]) == 2
    # farm rules wire into the generic assertion engine
    v = bs.evaluate_case(
        "farm", m,
        {"min_scaling": {"value": 1e9, "severity": "error"},
         "max_failed": {"value": 0, "severity": "error"}},
        None,
    )
    by_rule = {a["rule"]: a for a in v["assertions"]}
    assert not by_rule["min_scaling"]["passed"]
    assert by_rule["max_failed"]["passed"]


def test_report_header_git_block():
    header = bs.report_header()
    git = header["git"]
    # inside this repo both fields resolve; the API tolerates absence
    assert set(git) == {"commit", "dirty"}
    if git["commit"] is not None:
        assert len(git["commit"]) == 40
