"""Tests for the ASCII visualisation helpers."""

from repro.analysis.viz import (
    render_configuration,
    render_link_heatmap,
    render_schedule_utilisation,
)
from repro.core.combined import combined_schedule
from repro.core.paths import route_requests
from repro.core.requests import RequestSet
from repro.patterns.classic import ring_pattern


class TestRenderConfiguration:
    def test_fig1_rendering(self, torus4):
        requests = RequestSet.from_pairs([(4, 1), (5, 3), (6, 10), (8, 9), (11, 2)])
        connections = route_requests(torus4, requests)
        schedule = combined_schedule(connections, torus4)
        out = render_configuration(torus4, schedule[0])
        assert "4x4" in out
        assert "4 -> 1" in out  # wait: formatting pads ids
        assert "fiber hops by direction" in out

    def test_grid_contains_all_ids(self, torus4):
        requests = RequestSet.from_pairs([(0, 1)])
        connections = route_requests(torus4, requests)
        schedule = combined_schedule(connections, torus4)
        out = render_configuration(torus4, schedule[0])
        for node in range(16):
            assert f"{node}" in out


class TestRenderScheduleUtilisation:
    def test_frame_summary(self, torus8):
        connections = route_requests(torus8, ring_pattern(64))
        schedule = combined_schedule(connections, torus8)
        out = render_schedule_utilisation(torus8, schedule)
        assert f"K = {schedule.degree}" in out
        assert "frame utilisation" in out
        assert out.count("slot ") == schedule.degree


class TestRenderLinkHeatmap:
    def test_row_per_torus_row(self, torus8):
        connections = route_requests(torus8, ring_pattern(64))
        schedule = combined_schedule(connections, torus8)
        out = render_link_heatmap(torus8, schedule)
        assert len(out.splitlines()) == 1 + torus8.height

    def test_saturated_fiber_marked(self, torus8):
        # Twelve messages over the same fiber 0->1.
        from repro.core.requests import Request

        requests = RequestSet(
            [Request(0, 1, tag=i) for i in range(12)],
            allow_duplicates=True,
        )
        connections = route_requests(torus8, requests)
        schedule = combined_schedule(connections, torus8)
        out = render_link_heatmap(torus8, schedule)
        assert "*" in out  # >= 10 slots lit
