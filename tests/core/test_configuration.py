"""Tests for configurations and configuration sets."""

import pytest

from repro.core.configuration import (
    Configuration,
    ConfigurationSet,
    ScheduleValidationError,
)
from repro.core.paths import route_requests
from repro.core.requests import RequestSet


@pytest.fixture()
def conns(linear5):
    rs = RequestSet.from_pairs([(0, 2), (1, 3), (3, 4), (2, 4)])
    return route_requests(linear5, rs)


class TestConfiguration:
    def test_fits_then_add(self, conns):
        cfg = Configuration()
        assert cfg.fits(conns[0])
        cfg.add(conns[0])
        assert not cfg.fits(conns[1])

    def test_add_conflicting_raises(self, conns):
        cfg = Configuration([conns[0]])
        with pytest.raises(ScheduleValidationError):
            cfg.add(conns[1])

    def test_remove_restores_links(self, conns):
        cfg = Configuration([conns[0]])
        cfg.remove(conns[0])
        assert len(cfg) == 0
        assert cfg.fits(conns[1])

    def test_total_links_used(self, conns):
        cfg = Configuration([conns[0]])
        assert cfg.total_links_used == conns[0].num_links


class TestConfigurationSet:
    def test_degree(self, conns):
        cs = ConfigurationSet([Configuration([conns[0], conns[3]]),
                               Configuration([conns[1], conns[2]])])
        assert cs.degree == 2

    def test_slot_map(self, conns):
        cs = ConfigurationSet([Configuration([conns[0], conns[3]]),
                               Configuration([conns[1], conns[2]])])
        assert cs.slot_map() == {0: 0, 3: 0, 1: 1, 2: 1}

    def test_slot_map_rejects_double_scheduling(self, conns):
        """A connection in two slots is the signature bug of an
        incremental amend path -- slot_map must refuse, not mask it."""
        cs = ConfigurationSet([Configuration([conns[0]]),
                               Configuration([conns[1]]),
                               Configuration([conns[0]])])
        with pytest.raises(ScheduleValidationError, match="slot 0 and slot 2"):
            cs.slot_map()

    def test_slot_map_rejects_duplicate_within_slot(self, conns):
        cfg = Configuration()
        cfg.connections = [conns[0], conns[0]]  # forced in, bypassing add()
        with pytest.raises(ScheduleValidationError, match="scheduled in both"):
            ConfigurationSet([cfg]).slot_map()

    def test_clone_is_independent(self, conns):
        cs = ConfigurationSet([Configuration([conns[0], conns[3]]),
                               Configuration([conns[1], conns[2]])])
        copy = cs.clone()
        copy[0].remove(conns[0])
        assert len(cs[0]) == 2 and len(copy[0]) == 1
        assert cs.slot_map() == {0: 0, 3: 0, 1: 1, 2: 1}
        cs.validate(conns)

    def test_validate_accepts_good_schedule(self, conns):
        cs = ConfigurationSet([Configuration([conns[0], conns[3]]),
                               Configuration([conns[1], conns[2]])])
        cs.validate(conns)

    def test_validate_detects_missing(self, conns):
        cs = ConfigurationSet([Configuration([conns[0]])])
        with pytest.raises(ScheduleValidationError, match="coverage"):
            cs.validate(conns)

    def test_validate_detects_duplicate(self, conns):
        cs = ConfigurationSet([
            Configuration([conns[0], conns[3]]),
            Configuration([conns[1], conns[2]]),
            Configuration([conns[0]]),
        ])
        with pytest.raises(ScheduleValidationError, match="twice"):
            cs.validate(conns)

    def test_validate_detects_internal_conflict(self, conns):
        """Bypass Configuration.add's check to prove validate re-checks."""
        cfg = Configuration()
        cfg.connections = [conns[0], conns[1]]  # conflicting, forced in
        cs = ConfigurationSet([cfg, Configuration([conns[2]]), Configuration([conns[3]])])
        with pytest.raises(ScheduleValidationError, match="reuses"):
            cs.validate(conns)

    def test_all_connections_in_slot_order(self, conns):
        cs = ConfigurationSet([Configuration([conns[1]]),
                               Configuration([conns[0]])])
        assert [c.index for c in cs.all_connections()] == [1, 0]

    def test_utilisation(self, conns, linear5):
        cs = ConfigurationSet([Configuration([conns[0], conns[3]]),
                               Configuration([conns[1], conns[2]])])
        u = cs.utilisation(linear5.num_links)
        assert 0 < u < 1
