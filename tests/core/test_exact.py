"""Tests for the exact branch-and-bound scheduler."""

import pytest

from repro.core.bounds import max_link_load_bound
from repro.core.coloring import coloring_schedule
from repro.core.exact import certified_optimal_degree, exact_schedule
from repro.core.paths import route_requests
from repro.core.requests import RequestSet
from repro.patterns.random_patterns import random_pattern
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D


class TestWorkedExamples:
    def test_fig3_optimum_is_proven_two(self, linear5):
        """The paper's Fig. 3 claims the optimum is 2; prove it."""
        rs = RequestSet.from_pairs([(0, 2), (1, 3), (3, 4), (2, 4)])
        conns = route_requests(linear5, rs)
        result = exact_schedule(conns)
        result.schedule.validate(conns)
        assert result.schedule.degree == 2
        assert result.proven_optimal

    def test_ring8_bidirectional_is_two(self):
        """Ring pattern on a ring topology: 16 connections, optimum 2."""
        from repro.patterns.classic import ring_pattern

        topo = Ring(8)
        conns = route_requests(topo, ring_pattern(8))
        degree, proven = certified_optimal_degree(conns)
        assert (degree, proven) == (2, True)

    def test_injection_clique_exact(self, torus8):
        rs = RequestSet.from_pairs([(0, d) for d in (1, 2, 3, 4, 5)])
        conns = route_requests(torus8, rs)
        degree, proven = certified_optimal_degree(conns)
        assert (degree, proven) == (5, True)

    def test_empty(self):
        result = exact_schedule([])
        assert result.schedule.degree == 0
        assert result.proven_optimal


class TestAgainstHeuristics:
    @pytest.mark.parametrize("seed", range(6))
    def test_exact_never_above_coloring(self, seed):
        topo = Torus2D(4)
        conns = route_requests(topo, random_pattern(16, 18, seed=seed))
        result = exact_schedule(conns)
        result.schedule.validate(conns)
        assert result.schedule.degree <= coloring_schedule(conns).degree
        assert result.schedule.degree >= max_link_load_bound(conns)

    @pytest.mark.parametrize("seed", range(4))
    def test_proven_cases_match_bound_or_beat_heuristic(self, seed):
        """On these sizes the search exhausts; the certified optimum is
        a real reference value for the heuristics."""
        topo = Torus2D(4)
        conns = route_requests(topo, random_pattern(16, 14, seed=100 + seed))
        result = exact_schedule(conns)
        assert result.proven_optimal


class TestGuards:
    def test_too_large_rejected(self, torus8):
        conns = route_requests(torus8, random_pattern(64, 65, seed=0))
        with pytest.raises(ValueError, match="small instances"):
            exact_schedule(conns)

    def test_budget_exhaustion_flagged(self, torus8):
        conns = route_requests(torus8, random_pattern(64, 40, seed=1))
        result = exact_schedule(conns, max_nodes=10)
        result.schedule.validate(conns)  # incumbent still valid
        assert not result.proven_optimal
