"""Tests for delta scheduling: the incremental engine and its cost model."""

import pytest

from repro.compiler.serialize import canonical_dumps, schedule_to_dict
from repro.core import perf
from repro.core.bounds import max_link_load_bound
from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.delta import (
    AMEND_ACTIONS,
    AmendPolicy,
    DeltaScheduler,
    amend_schedule,
    fragmentation,
)
from repro.core.packing import first_fit
from repro.core.paths import Connection, route_requests
from repro.core.requests import Request, RequestSet
from repro.topology.torus import Torus2D

TORUS = Torus2D(4)
N = TORUS.num_nodes
RING = [(i, (i + 1) % N) for i in range(N)]


def ring_conns():
    return route_requests(TORUS, RequestSet.from_pairs(RING))


def routed(index, src, dst, size=1, tag=0):
    return Connection(
        index, Request(src, dst, size=size, tag=tag), TORUS.route(src, dst)
    )


def ring_engine(**kwargs):
    conns = ring_conns()
    schedule = first_fit(conns)
    schedule.validate(conns)
    return DeltaScheduler(schedule, num_links=TORUS.num_links, **kwargs)


class TestAmendPolicy:
    def test_defaults_valid(self):
        AmendPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_delta_k": -1},
            {"recompile_slack": -1},
            {"repack_threshold": -0.1},
            {"repack_threshold": 1.5},
            {"recompile_fraction": 0.0},
            {"recompile_fraction": 1.5},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AmendPolicy(**kwargs)


class TestFragmentation:
    def test_empty_schedule(self):
        assert fragmentation([]) == 0.0

    def test_uniform_is_zero(self):
        conns = ring_conns()
        cfgs = [Configuration([c]) for c in conns[:4]]
        assert fragmentation(cfgs) == 0.0

    def test_skew_is_positive(self):
        conns = ring_conns()
        cfgs = [Configuration(conns[:3]), Configuration([conns[4]])]
        assert 0.0 < fragmentation(cfgs) < 1.0

    def test_all_empty_slots(self):
        assert fragmentation([Configuration(), Configuration()]) == 1.0


class TestAmendBasics:
    def test_remove_keeps_schedule_valid(self):
        engine = ring_engine()
        res = engine.amend(remove=[0, 5])
        assert res.action in AMEND_ACTIONS
        assert res.removed == 2 and res.added == 0
        assert engine.num_connections == len(RING) - 2
        engine.schedule.validate(engine.connections())

    def test_add_into_slack_reuses_freed_slot(self):
        engine = ring_engine()
        before = engine.degree
        engine.amend(remove=[3])
        res = engine.amend(add=[routed(100, 3, 4)])
        assert res.degree <= before + engine.policy.max_delta_k
        engine.schedule.validate(engine.connections())

    def test_delta_k_accounting(self):
        engine = ring_engine()
        before = engine.degree
        res = engine.amend(add=[routed(100, 0, 5)])
        assert res.delta_k == res.degree - before
        assert res.degree == engine.degree

    def test_result_schedule_tracks_live_state(self):
        engine = ring_engine()
        res = engine.amend(remove=[1])
        assert res.schedule.degree == engine.degree
        assert {c.index for c in res.schedule.all_connections()} == set(
            c.index for c in engine.connections()
        )

    def test_empty_update_is_a_noop_amend(self):
        engine = ring_engine()
        before = engine.degree
        res = engine.amend()
        assert res.action == "amend"
        assert res.degree == before and res.added == res.removed == 0


class TestAmendErrors:
    def test_unknown_remove_raises_and_leaves_state(self):
        engine = ring_engine()
        before = engine.degree
        with pytest.raises(KeyError):
            engine.amend(remove=[999])
        assert engine.degree == before
        assert engine.num_connections == len(RING)
        engine.schedule.validate(engine.connections())

    def test_double_remove_in_one_update_raises(self):
        engine = ring_engine()
        with pytest.raises(KeyError):
            engine.amend(remove=[0, 0])
        assert engine.num_connections == len(RING)

    def test_colliding_add_index_raises(self):
        engine = ring_engine()
        with pytest.raises(ValueError):
            engine.amend(add=[routed(0, 0, 5)])
        engine.schedule.validate(engine.connections())

    def test_colliding_add_within_update_raises(self):
        engine = ring_engine()
        with pytest.raises(ValueError):
            engine.amend(add=[routed(100, 0, 5), routed(100, 1, 6)])
        assert engine.num_connections == len(RING)

    def test_bad_update_is_atomic(self):
        """A removal colliding with a bad add leaves nothing half-applied."""
        engine = ring_engine()
        with pytest.raises(ValueError):
            engine.amend(add=[routed(0, 0, 5)], remove=[1])
        assert engine.num_connections == len(RING)
        engine.schedule.validate(engine.connections())


class TestCostModel:
    def test_large_update_goes_straight_to_recompile(self):
        engine = ring_engine()
        res = engine.amend(remove=list(range(len(RING) // 2)))
        assert res.action == "recompile"
        engine.schedule.validate(engine.connections())

    def test_exhausted_delta_k_budget_recompiles(self):
        policy = AmendPolicy(max_delta_k=0)
        engine = ring_engine(policy=policy)
        # The ring packs into one full configuration; a duplicate pair
        # conflicts with every slot, so it must open a slot -- which the
        # zero budget forbids.
        res = engine.amend(add=[routed(100, 0, 1)])
        assert res.action == "recompile"
        engine.schedule.validate(engine.connections())

    def test_hole_accumulation_triggers_repack(self):
        # A deliberately padded schedule: one singleton per connection
        # (K = n, link-load bound = 1).  With threshold 0 the first
        # removal trips the hole counter and the amend repacks.
        conns = ring_conns()
        padded = ConfigurationSet(
            [Configuration([c]) for c in conns], scheduler="padded"
        )
        engine = DeltaScheduler(
            padded,
            num_links=TORUS.num_links,
            policy=AmendPolicy(repack_threshold=0.0, recompile_fraction=1.0),
        )
        assert engine.degree == len(conns)
        res = engine.amend(remove=[0])
        assert res.action == "amend+repack"
        assert res.degree < len(conns)
        engine.schedule.validate(engine.connections())

    def test_repack_skipped_at_link_load_bound(self):
        # K already equals the link-load lower bound: repacking cannot
        # help, so even a tripped hole counter stays a plain amend.
        engine = ring_engine(
            policy=AmendPolicy(repack_threshold=0.0, recompile_fraction=1.0)
        )
        assert engine.degree == engine.link_load_bound()
        res = engine.amend(remove=[0])
        assert res.action == "amend"

    def test_certified_gap_matches_bounds_module(self):
        engine = ring_engine()
        expected = max(
            0, engine.degree - max_link_load_bound(engine.connections())
        )
        assert engine.certified_gap == expected

    def test_link_load_bound_tracks_incrementally(self):
        engine = ring_engine()
        engine.amend(remove=[0, 1], add=[routed(100, 0, 10), routed(101, 2, 8)])
        engine.amend(remove=[100])
        assert engine.link_load_bound() == max_link_load_bound(
            engine.connections()
        )


class TestCopyOnWrite:
    def test_amend_schedule_never_mutates_input(self):
        conns = ring_conns()
        schedule = first_fit(conns)
        snapshot = canonical_dumps(schedule_to_dict(schedule))
        res = amend_schedule(
            schedule, add=[routed(100, 0, 5)], remove=[0, 1]
        )
        assert res.schedule is not schedule
        assert canonical_dumps(schedule_to_dict(schedule)) == snapshot
        schedule.validate(conns)

    def test_engine_clones_on_init(self):
        conns = ring_conns()
        schedule = first_fit(conns)
        slots_before = schedule.slot_map()
        engine = DeltaScheduler(schedule, num_links=TORUS.num_links)
        engine.amend(remove=list(range(4)))
        assert schedule.slot_map() == slots_before
        schedule.validate(conns)


class TestPerfCounters:
    def test_amend_counters_increment(self):
        engine = ring_engine()
        base = perf.COUNTERS.amend_updates
        engine.amend(remove=[0])
        engine.amend(remove=list(range(1, len(RING) // 2 + 1)))  # recompile
        assert perf.COUNTERS.amend_updates >= base + 2
        assert perf.COUNTERS.amend_recompiles >= 1
