"""Tests for the greedy scheduler (paper Fig. 2 / Fig. 3)."""

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.paths import route_requests
from repro.core.requests import RequestSet


@pytest.fixture()
def fig3(linear5):
    rs = RequestSet.from_pairs([(0, 2), (1, 3), (3, 4), (2, 4)])
    return route_requests(linear5, rs)


class TestFig3Example:
    """The paper's worked example of greedy's order sensitivity."""

    def test_natural_order_needs_three_slots(self, fig3):
        schedule = greedy_schedule(fig3)
        schedule.validate(fig3)
        assert schedule.degree == 3

    def test_natural_order_slots_match_paper(self, fig3):
        # Paper: (0,2) slot 1, (1,3) slot 2, (3,4) slot 1, (2,4) slot 3.
        slots = greedy_schedule(fig3).slot_map()
        assert slots[0] == 0
        assert slots[1] == 1
        assert slots[2] == 0
        assert slots[3] == 2

    def test_better_order_needs_two_slots(self, fig3):
        # Paper: scheduling (0,2)+(2,4) and (1,3)+(3,4) together gives 2.
        schedule = greedy_schedule(fig3, order=[0, 3, 1, 2])
        schedule.validate(fig3)
        assert schedule.degree == 2


class TestGreedyGeneral:
    def test_empty(self):
        assert greedy_schedule([]).degree == 0

    def test_single(self, torus8):
        conns = route_requests(torus8, RequestSet.from_pairs([(0, 9)]))
        schedule = greedy_schedule(conns)
        schedule.validate(conns)
        assert schedule.degree == 1

    def test_all_conflicting_serializes(self, torus8):
        # Five messages from node 0 all share the injection fiber.
        pairs = [(0, d) for d in (1, 2, 3, 4, 5)]
        conns = route_requests(torus8, RequestSet.from_pairs(pairs))
        schedule = greedy_schedule(conns)
        schedule.validate(conns)
        assert schedule.degree == 5

    def test_disjoint_fit_one_slot(self, torus8):
        pairs = [(0, 1), (2, 3), (4, 5), (8, 9)]
        conns = route_requests(torus8, RequestSet.from_pairs(pairs))
        assert greedy_schedule(conns).degree == 1

    def test_scheduler_label(self, fig3):
        assert greedy_schedule(fig3).scheduler == "greedy"

    def test_order_only_permutes(self, fig3):
        """Any processing order yields a valid, complete schedule."""
        import itertools

        for order in itertools.permutations(range(4)):
            schedule = greedy_schedule(fig3, order=list(order))
            schedule.validate(fig3)
            assert 2 <= schedule.degree <= 3
