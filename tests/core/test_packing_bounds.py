"""Tests for the packing primitives and the degree lower bounds."""

import pytest

from repro.core.bounds import clique_bound, degree_lower_bound, max_link_load_bound
from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.greedy import greedy_schedule
from repro.core.packing import first_fit, repack
from repro.core.paths import route_requests
from repro.core.requests import RequestSet
from repro.patterns.random_patterns import random_pattern


class TestFirstFit:
    def test_equals_paper_greedy_formulation(self, torus8):
        """First-fit and the paper's pass-per-configuration greedy are
        the same algorithm: check against a hand-simulated instance."""
        rs = RequestSet.from_pairs([(0, 1), (0, 2), (1, 2), (2, 3), (0, 3)])
        conns = route_requests(torus8, rs)
        # Manual pass-per-config: C1={(0,1),(1,2),(2,3)}, C2={(0,2)}, C3={(0,3)}
        slots = first_fit(conns).slot_map()
        assert slots == {0: 0, 2: 0, 3: 0, 1: 1, 4: 2}

    def test_respects_order(self, linear5):
        rs = RequestSet.from_pairs([(0, 2), (1, 3), (3, 4), (2, 4)])
        conns = route_requests(linear5, rs)
        assert first_fit(conns).degree == 3
        assert first_fit(conns, [0, 3, 1, 2]).degree == 2


class TestRepack:
    def test_reduces_padded_schedule(self, torus8):
        """A schedule deliberately split into singleton configurations
        repacks down to the greedy degree or better."""
        conns = route_requests(torus8, random_pattern(64, 60, seed=0))
        padded = ConfigurationSet([Configuration([c]) for c in conns])
        packed = repack(padded)
        packed.validate(conns)
        assert packed.degree <= greedy_schedule(conns).degree

    def test_preserves_validity(self, torus8):
        conns = route_requests(torus8, random_pattern(64, 500, seed=1))
        schedule = repack(first_fit(conns))
        schedule.validate(conns)

    def test_no_change_on_tight_schedule(self, torus8):
        # 4 messages out of one node: degree 4 is optimal; repack keeps it.
        conns = route_requests(
            torus8, RequestSet.from_pairs([(0, 1), (0, 2), (0, 3), (0, 4)])
        )
        schedule = repack(first_fit(conns))
        assert schedule.degree == 4

    def test_scheduler_label_updated(self, torus8):
        conns = route_requests(torus8, RequestSet.from_pairs([(0, 1)]))
        assert repack(first_fit(conns)).scheduler.endswith("+repack")


class TestBounds:
    def test_link_load_bound_out_degree(self, torus8):
        conns = route_requests(
            torus8, RequestSet.from_pairs([(0, 1), (0, 2), (0, 3)])
        )
        assert max_link_load_bound(conns) == 3

    def test_empty(self):
        assert max_link_load_bound([]) == 0
        assert clique_bound([]) == 0

    def test_clique_bound_at_least_link_bound_on_small(self, linear5):
        rs = RequestSet.from_pairs([(0, 2), (1, 3), (3, 4), (2, 4)])
        conns = route_requests(linear5, rs)
        assert clique_bound(conns) >= max_link_load_bound(conns)

    @pytest.mark.parametrize("n", [50, 200, 800])
    def test_bound_below_all_schedulers(self, torus8, n):
        from repro.core.registry import get_scheduler

        conns = route_requests(torus8, random_pattern(64, n, seed=n))
        bound = degree_lower_bound(conns)
        for name in ("greedy", "coloring", "aapc", "combined"):
            assert bound <= get_scheduler(name)(conns, torus8).degree

    def test_bound_with_clique_option(self, linear5):
        rs = RequestSet.from_pairs([(0, 2), (1, 3), (3, 4), (2, 4)])
        conns = route_requests(linear5, rs)
        assert degree_lower_bound(conns, use_clique=True) == 2
