"""Tests for the packing primitives and the degree lower bounds."""

import pytest

from repro.core.bounds import clique_bound, degree_lower_bound, max_link_load_bound
from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.greedy import greedy_schedule
from repro.core.packing import first_fit, repack
from repro.core.paths import route_requests
from repro.core.requests import RequestSet
from repro.patterns.random_patterns import random_pattern


class TestFirstFit:
    def test_equals_paper_greedy_formulation(self, torus8):
        """First-fit and the paper's pass-per-configuration greedy are
        the same algorithm: check against a hand-simulated instance."""
        rs = RequestSet.from_pairs([(0, 1), (0, 2), (1, 2), (2, 3), (0, 3)])
        conns = route_requests(torus8, rs)
        # Manual pass-per-config: C1={(0,1),(1,2),(2,3)}, C2={(0,2)}, C3={(0,3)}
        slots = first_fit(conns).slot_map()
        assert slots == {0: 0, 2: 0, 3: 0, 1: 1, 4: 2}

    def test_respects_order(self, linear5):
        rs = RequestSet.from_pairs([(0, 2), (1, 3), (3, 4), (2, 4)])
        conns = route_requests(linear5, rs)
        assert first_fit(conns).degree == 3
        assert first_fit(conns, [0, 3, 1, 2]).degree == 2


class TestOrderValidation:
    def _conns(self, topo):
        rs = RequestSet.from_pairs([(0, 1), (1, 2), (2, 3)])
        return route_requests(topo, rs)

    def test_duplicate_positions_rejected(self, torus8):
        with pytest.raises(ValueError, match="duplicated positions \\[1\\]"):
            first_fit(self._conns(torus8), [0, 1, 1])

    def test_missing_positions_rejected(self, torus8):
        with pytest.raises(ValueError, match="permutation"):
            first_fit(self._conns(torus8), [0, 1])

    def test_out_of_range_rejected(self, torus8):
        with pytest.raises(ValueError, match="out-of-range positions \\[3\\]"):
            first_fit(self._conns(torus8), [0, 1, 3])

    def test_negative_rejected(self, torus8):
        with pytest.raises(ValueError, match="out-of-range"):
            first_fit(self._conns(torus8), [0, 1, -1])

    def test_valid_permutation_accepted(self, torus8):
        conns = self._conns(torus8)
        first_fit(conns, [2, 0, 1]).validate(conns)


class TestRepack:
    def test_reduces_padded_schedule(self, torus8):
        """A schedule deliberately split into singleton configurations
        repacks down to the greedy degree or better."""
        conns = route_requests(torus8, random_pattern(64, 60, seed=0))
        padded = ConfigurationSet([Configuration([c]) for c in conns])
        packed = repack(padded)
        packed.validate(conns)
        assert packed.degree <= greedy_schedule(conns).degree

    def test_preserves_validity(self, torus8):
        conns = route_requests(torus8, random_pattern(64, 500, seed=1))
        schedule = repack(first_fit(conns))
        schedule.validate(conns)

    def test_no_change_on_tight_schedule(self, torus8):
        # 4 messages out of one node: degree 4 is optimal; repack keeps it.
        conns = route_requests(
            torus8, RequestSet.from_pairs([(0, 1), (0, 2), (0, 3), (0, 4)])
        )
        schedule = repack(first_fit(conns))
        assert schedule.degree == 4

    def test_scheduler_label_updated(self, torus8):
        conns = route_requests(torus8, RequestSet.from_pairs([(0, 1)]))
        assert repack(first_fit(conns)).scheduler.endswith("+repack")

    def test_input_schedule_byte_identical_after_repack(self, torus8):
        """Aliasing regression: repack used to mutate the caller's
        configurations in place, corrupting cache-held artifacts.  The
        input must serialize to the exact same bytes afterwards."""
        from repro.compiler.serialize import canonical_dumps, schedule_to_dict

        conns = route_requests(torus8, random_pattern(64, 60, seed=3))
        padded = ConfigurationSet([Configuration([c]) for c in conns])
        before = canonical_dumps(schedule_to_dict(padded))
        packed = repack(padded)
        assert packed.degree < padded.degree  # repack actually did work
        assert canonical_dumps(schedule_to_dict(padded)) == before
        padded.validate(conns)

    def test_matches_resort_reference(self, torus8):
        """The incrementally maintained candidate order reaches exactly
        the local optimum of the straightforward re-sort-every-round
        formulation (regression guard for the order bookkeeping)."""
        from repro.core.packing import _SetDissolver

        def naive_repack(schedule):
            configs = [cfg for cfg in schedule if len(cfg) > 0]
            dissolver = _SetDissolver(configs)
            improved = True
            while improved and len(configs) > 1:
                improved = False
                # Stable smallest-first sort, recomputed from scratch.
                for victim in sorted(configs, key=len):
                    pos = configs.index(victim)
                    if dissolver.try_dissolve(victim, configs, pos) is not None:
                        configs.pop(pos)
                        improved = True
                        break
            return [[c.pair for c in cfg] for cfg in configs]

        conns = route_requests(torus8, random_pattern(64, 300, seed=9))
        padded = ConfigurationSet([Configuration([c]) for c in conns])
        reference = naive_repack(ConfigurationSet([Configuration([c]) for c in conns]))
        packed = repack(padded)
        assert [[c.pair for c in cfg] for cfg in packed] == reference

    def test_failed_dissolve_leaves_victim_untouched(self, linear5):
        """A failed all-or-nothing dissolution must not reorder the
        victim's members (the set kernel's rollback used to rotate
        them, silently diverging from the bitmask kernel)."""
        rs = RequestSet.from_pairs([(0, 1), (3, 4), (2, 4)])
        conns = route_requests(linear5, rs)
        a, b, c = conns
        for kernel in ("set", "bitmask"):
            schedule = ConfigurationSet([Configuration([a, b]), Configuration([c])])
            packed = repack(schedule, kernel=kernel)
            assert packed.degree == 2  # (3,4) can never leave: no dissolve
            assert [m.pair for m in packed[0]] == [a.pair, b.pair], kernel


class TestBounds:
    def test_link_load_bound_out_degree(self, torus8):
        conns = route_requests(
            torus8, RequestSet.from_pairs([(0, 1), (0, 2), (0, 3)])
        )
        assert max_link_load_bound(conns) == 3

    def test_empty(self):
        assert max_link_load_bound([]) == 0
        assert clique_bound([]) == 0

    def test_clique_bound_at_least_link_bound_on_small(self, linear5):
        rs = RequestSet.from_pairs([(0, 2), (1, 3), (3, 4), (2, 4)])
        conns = route_requests(linear5, rs)
        assert clique_bound(conns) >= max_link_load_bound(conns)

    @pytest.mark.parametrize("n", [50, 200, 800])
    def test_bound_below_all_schedulers(self, torus8, n):
        from repro.core.registry import get_scheduler

        conns = route_requests(torus8, random_pattern(64, n, seed=n))
        bound = degree_lower_bound(conns)
        for name in ("greedy", "coloring", "aapc", "combined"):
            assert bound <= get_scheduler(name)(conns, torus8).degree

    def test_bound_with_clique_option(self, linear5):
        rs = RequestSet.from_pairs([(0, 2), (1, 3), (3, 4), (2, 4)])
        conns = route_requests(linear5, rs)
        assert degree_lower_bound(conns, use_clique=True) == 2
