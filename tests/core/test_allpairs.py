"""Structural all-to-all scheduling and its scheduler dispatcher."""

import numpy as np
import pytest

from repro.core.allpairs import (
    MATERIALIZE_CEILING,
    all_to_all_fast_schedule,
    all_to_all_lower_bound,
    all_to_all_schedule,
)
from repro.aapc.ring_latin import ring_link_load
from repro.topology.torus import Torus2D


def test_lower_bound_closed_form():
    # 8x8: max(63, 8 * ring_link_load(8)) = 64, the known optimum
    assert all_to_all_lower_bound(Torus2D(8)) == 64
    topo = Torus2D(4, 3)
    expected = max(
        topo.num_nodes - 1,
        (topo.num_nodes // 4) * ring_link_load(4),
        (topo.num_nodes // 3) * ring_link_load(3),
    )
    assert all_to_all_lower_bound(topo) == expected


def test_fastpath_8x8_is_provably_optimal():
    fast = all_to_all_fast_schedule(Torus2D(8))
    assert fast.degree == 64
    assert fast.lower_bound == 64
    assert fast.optimality_ratio == 1.0
    assert fast.scheduler == "fastpath[latin-product]"
    assert fast.num_connections == 64 * 63
    assert int(fast.slot_sizes.sum()) == 64 * 63


def test_fastpath_materializes_into_a_valid_schedule():
    topo = Torus2D(4)
    fast = all_to_all_fast_schedule(topo)
    connections, schedule = fast.materialize(topo)
    assert len(connections) == 16 * 15
    assert schedule.degree == fast.degree
    schedule.validate(connections)  # re-proves conflict-freeness + coverage
    # slot_of agrees with the materialized configuration set
    slots = {c.pair: slot for slot, cfg in enumerate(schedule) for c in cfg}
    for (s, d), slot in slots.items():
        assert fast.slot_of[s, d] == slot


def test_fastpath_slot_matrix_shape():
    fast = all_to_all_fast_schedule(Torus2D(4, 3))
    n = 12
    assert fast.slot_of.shape == (n, n)
    assert (fast.slot_of.diagonal() == -1).all()
    off = fast.slot_of[~np.eye(n, dtype=bool)]
    assert off.min() == 0 and off.max() == fast.degree - 1
    assert fast.throughput > 0


def test_dispatcher_generic_schedulers_below_ceiling():
    topo = Torus2D(4)
    for name in ("greedy", "coloring", "aapc", "combined"):
        schedule = all_to_all_schedule(topo, scheduler=name, kernel="bitmask")
        assert schedule.degree >= all_to_all_lower_bound(topo)
        assert not hasattr(schedule, "slot_of")  # a real ConfigurationSet


def test_dispatcher_degenerates_above_ceiling_with_honest_tag():
    fast = all_to_all_schedule(
        Torus2D(4), scheduler="combined", materialize_ceiling=10
    )
    assert fast.scheduler == "combined(fastpath[latin-product])"
    assert fast.degree == 16  # the structural result, not the generic one


def test_dispatcher_fastpath_and_validation():
    fast = all_to_all_schedule(Torus2D(4), scheduler="fastpath")
    assert fast.scheduler == "fastpath[latin-product]"
    with pytest.raises(ValueError, match="scheduler must be one of"):
        all_to_all_schedule(Torus2D(4), scheduler="banana")


def test_default_ceiling_is_sized_for_32x32():
    # 16x16 (65 280 connections) must still take the generic path by
    # default; 32x32 (1 047 552) must not.
    assert 16 * 16 * 255 < MATERIALIZE_CEILING < 32 * 32 * 1023


def test_combined_coloring_ceiling_degenerates_to_aapc():
    from repro.core.combined import combined_schedule
    from repro.core.aapc_ordered import ordered_aapc_schedule
    from repro.core.paths import route_requests
    from repro.patterns.classic import all_to_all_pattern

    topo = Torus2D(4)
    conns = route_requests(topo, all_to_all_pattern(topo.num_nodes))
    capped = combined_schedule(conns, topo, coloring_ceiling=10)
    assert capped.scheduler == "combined(aapc)"
    assert capped.degree == ordered_aapc_schedule(conns, topo).degree
    # default ceiling leaves the small case on the full two-pass path
    full = combined_schedule(conns, topo)
    assert full.scheduler in ("combined(coloring)", "combined(aapc)")
    assert full.degree <= capped.degree
