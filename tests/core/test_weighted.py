"""Tests for size-aware (weighted) TDM schedules."""

import pytest

from repro.core.combined import combined_schedule
from repro.core.paths import route_requests
from repro.core.requests import RequestSet
from repro.core.weighted import (
    WeightedSchedule,
    _deficit_round_robin,
    simulate_weighted,
    weighted_schedule,
)


@pytest.fixture()
def skewed(torus8):
    """Two disjoint heavy connections + several light conflicting ones."""
    rs = RequestSet.from_sized_pairs([
        (0, 1, 400), (2, 3, 400),          # heavy, mutually compatible
        (0, 2, 4), (1, 3, 4), (0, 3, 4),   # light, conflict with the heavy ones
    ])
    conns = route_requests(torus8, rs)
    return conns, combined_schedule(conns, torus8)


class TestDeficitRoundRobin:
    def test_counts_respected(self):
        frame = _deficit_round_robin([3, 1, 2])
        assert len(frame) == 6
        assert frame.count(0) == 3
        assert frame.count(1) == 1
        assert frame.count(2) == 2

    def test_spreading(self):
        """A configuration with half the slots appears every other slot."""
        frame = _deficit_round_robin([4, 2, 1, 1])
        positions = [t for t, i in enumerate(frame) if i == 0]
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert max(gaps) <= 3  # near-even spacing for rate 1/2


class TestWeightedSchedule:
    def test_uniform_sizes_stay_unreplicated(self, torus8):
        rs = RequestSet.from_pairs([(0, 1), (0, 2), (0, 3)], size=16)
        conns = route_requests(torus8, rs)
        base = combined_schedule(conns, torus8)
        weighted = weighted_schedule(base)
        assert weighted.frame_length == base.degree
        assert set(weighted.multiplicities) == {1}

    def test_skewed_sizes_replicate_heavy_config(self, skewed):
        conns, base = skewed
        weighted = weighted_schedule(base)
        weighted.validate(conns)
        assert weighted.frame_length > base.degree
        # The configuration holding the heavy connections got extra slots.
        assert max(weighted.multiplicities) > 1

    def test_skewed_makespan_improves(self, skewed):
        conns, base = skewed
        flat = WeightedSchedule(base=base, frame=list(range(base.degree)))
        weighted = weighted_schedule(base)
        t_flat = simulate_weighted(flat)
        t_weighted = simulate_weighted(weighted)
        assert t_weighted < t_flat

    def test_frame_cap_respected(self, skewed):
        _, base = skewed
        weighted = weighted_schedule(base, max_frame=base.degree + 1)
        assert weighted.frame_length <= base.degree + 1

    def test_cap_below_degree_rejected(self, skewed):
        _, base = skewed
        with pytest.raises(ValueError):
            weighted_schedule(base, max_frame=base.degree - 1)

    def test_empty_schedule(self):
        from repro.core.configuration import ConfigurationSet

        weighted = weighted_schedule(ConfigurationSet([]))
        assert weighted.frame == []
        assert simulate_weighted(weighted) == 0

    def test_validate_detects_missing_configuration(self, skewed):
        conns, base = skewed
        bad = WeightedSchedule(base=base, frame=[0] * base.degree)
        if base.degree > 1:
            with pytest.raises(AssertionError, match="never get a slot"):
                bad.validate(conns)


class TestSimulateWeighted:
    def test_matches_compiled_model_for_flat_frame(self, torus8):
        """With multiplicities all 1 the weighted simulator must agree
        with the compiled transfer model."""
        from repro.simulator.compiled import compiled_completion_time
        from repro.simulator.params import SimParams

        rs = RequestSet.from_sized_pairs([(0, 1, 40), (1, 2, 12), (4, 5, 8)])
        conns = route_requests(torus8, rs)
        base = combined_schedule(conns, torus8)
        flat = WeightedSchedule(base=base, frame=list(range(base.degree)))
        params = SimParams(compiled_startup=0)
        expected = compiled_completion_time(torus8, rs, params).completion_time
        assert simulate_weighted(flat, startup=0) == expected

    def test_startup_offsets_result(self, skewed):
        _, base = skewed
        weighted = weighted_schedule(base)
        assert simulate_weighted(weighted, startup=10) == \
            simulate_weighted(weighted, startup=0) + 10
