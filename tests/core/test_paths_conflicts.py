"""Tests for routed connections and conflict detection."""

import networkx as nx
import pytest

from repro.core.conflicts import (
    adjacency,
    build_conflict_graph,
    conflict,
    link_load,
    links_to_connections,
)
from repro.core.paths import Connection, route_requests
from repro.core.requests import RequestSet


@pytest.fixture()
def fig3_connections(linear5):
    """The Fig. 3 example: (0,2), (1,3), (3,4), (2,4)."""
    rs = RequestSet.from_pairs([(0, 2), (1, 3), (3, 4), (2, 4)])
    return route_requests(linear5, rs)


class TestRouteRequests:
    def test_indices_in_order(self, fig3_connections):
        assert [c.index for c in fig3_connections] == [0, 1, 2, 3]

    def test_link_set_matches_links(self, fig3_connections):
        for c in fig3_connections:
            assert c.link_set == frozenset(c.links)

    def test_num_links(self, fig3_connections):
        # (0,2): inject + 2 transit + eject = 4
        assert fig3_connections[0].num_links == 4
        # (3,4): inject + 1 transit + eject = 3
        assert fig3_connections[2].num_links == 3


class TestConflict:
    def test_fig3_conflict_structure(self, fig3_connections):
        a, b, c, d = fig3_connections
        # (0,2) vs (1,3): share forward fiber 1->2
        assert conflict(a, b)
        # (1,3) vs (2,4): share forward fiber 2->3
        assert conflict(b, d)
        # (3,4) vs (2,4): share fiber 3->4 and eject(4)
        assert conflict(c, d)
        # the compatible pairs of the paper's optimal schedule
        assert not conflict(a, c)
        assert not conflict(a, d)
        assert not conflict(b, c)

    def test_same_source_conflicts(self, torus8):
        rs = RequestSet.from_pairs([(0, 1), (0, 9)])
        a, b = route_requests(torus8, rs)
        assert conflict(a, b)  # both need inject(0)

    def test_same_destination_conflicts(self, torus8):
        rs = RequestSet.from_pairs([(1, 0), (9, 0)])
        a, b = route_requests(torus8, rs)
        assert conflict(a, b)  # both need eject(0)

    def test_disjoint_paths_do_not_conflict(self, torus8):
        rs = RequestSet.from_pairs([(0, 1), (2, 3)])
        a, b = route_requests(torus8, rs)
        assert not conflict(a, b)


class TestIndexes:
    def test_links_to_connections(self, fig3_connections):
        index = links_to_connections(fig3_connections)
        # the fiber 1->2 is used by connections 0 and 1
        shared = [members for members in index.values() if len(members) > 1]
        assert [0, 1] in shared

    def test_link_load_max(self, fig3_connections):
        assert max(link_load(fig3_connections).values()) == 2

    def test_adjacency_symmetric(self, fig3_connections):
        adj = adjacency(fig3_connections)
        for i, nbrs in enumerate(adj):
            for j in nbrs:
                assert i in adj[j]

    def test_adjacency_requires_ordered_indices(self, fig3_connections):
        shuffled = list(reversed(fig3_connections))
        with pytest.raises(ValueError):
            adjacency(shuffled)


class TestConflictGraph:
    def test_fig3_graph(self, fig3_connections):
        g = build_conflict_graph(fig3_connections)
        assert g.number_of_nodes() == 4
        assert set(g.edges()) == {(0, 1), (1, 3), (2, 3)}

    def test_graph_carries_connection_objects(self, fig3_connections):
        g = build_conflict_graph(fig3_connections)
        assert isinstance(g.nodes[0]["connection"], Connection)

    def test_chromatic_number_is_two(self, fig3_connections):
        """The Fig. 3 conflict graph is a path: 2-colorable, which is
        why the optimal multiplexing degree is 2."""
        g = build_conflict_graph(fig3_connections)
        assert nx.is_bipartite(g)
