"""Run-batched first-fit: the vectorized block placement of
link-disjoint runs must be byte-identical to the sequential kernel,
and a wrong ``runs`` hint must be rejected, never silently applied."""

import numpy as np
import pytest

from repro.core.linkmask import SlotMatrix
from repro.core.packing import first_fit
from repro.core.paths import route_requests
from repro.patterns.classic import all_to_all_pattern
from repro.topology.torus import Torus2D


def slots(schedule):
    return [[c.pair for c in cfg] for cfg in schedule]


@pytest.fixture(scope="module")
def conns():
    topo = Torus2D(4)
    return route_requests(topo, all_to_all_pattern(topo.num_nodes))


def test_singleton_runs_match_sequential(conns):
    # every run of length 1 is trivially link-disjoint
    batched = first_fit(conns, kernel="bitmask", runs=[1] * len(conns))
    assert slots(batched) == slots(first_fit(conns, kernel="set"))


def test_aapc_runs_match_sequential(conns):
    from repro.aapc.phases import aapc_phase_map
    from repro.core.aapc_ordered import aapc_rank_order

    topo = Torus2D(4)
    order, runs = aapc_rank_order(conns, aapc_phase_map(topo), with_runs=True)
    assert sum(runs) == len(conns) and min(runs) >= 1
    batched = first_fit(conns, order, kernel="bitmask", runs=runs,
                        num_links=topo.num_links)
    sequential = first_fit(conns, order, kernel="bitmask",
                           num_links=topo.num_links)
    assert slots(batched) == slots(sequential)
    assert slots(batched) == slots(first_fit(conns, order, kernel="set"))


def test_duplicate_pairs_split_into_disjoint_runs():
    # request sets are multisets: duplicates of one pair land in the
    # same AAPC phase but share every link, so the runs hint must break
    # at each repeat instead of handing first_fit a non-disjoint block
    from repro.aapc.phases import aapc_phase_map
    from repro.core.aapc_ordered import aapc_rank_order, ordered_aapc_schedule
    from repro.core.requests import RequestSet

    topo = Torus2D(4)
    pairs = [(0, 1)] * 12 + [(2, 3), (5, 6)]
    dup = route_requests(
        topo, RequestSet.from_pairs(pairs, allow_duplicates=True)
    )
    order, runs = aapc_rank_order(dup, aapc_phase_map(topo), with_runs=True)
    assert sum(runs) == len(dup) and min(runs) >= 1
    batched = first_fit(dup, order, kernel="bitmask", runs=runs,
                        num_links=topo.num_links)
    assert slots(batched) == slots(first_fit(dup, order, kernel="set"))
    assert slots(ordered_aapc_schedule(dup, topo, kernel="bitmask")) == slots(
        ordered_aapc_schedule(dup, topo, kernel="set")
    )


def test_empty_sequence_with_empty_runs():
    assert len(first_fit([], kernel="bitmask", runs=[])) == 0


def test_runs_must_sum_to_sequence_length(conns):
    with pytest.raises(ValueError, match="sum"):
        first_fit(conns, kernel="bitmask", runs=[len(conns) - 1])


def test_runs_must_be_positive(conns):
    with pytest.raises(ValueError, match="positive"):
        first_fit(conns, kernel="bitmask", runs=[0, len(conns)])


def test_runs_must_be_link_disjoint(conns):
    # one run spanning everything: all-to-all certainly shares links
    with pytest.raises(ValueError, match="disjoint"):
        first_fit(conns, kernel="bitmask", runs=[len(conns)])


def test_set_kernel_ignores_the_hint(conns):
    # even an illegal hint: the set kernel is the sequential reference
    reference = first_fit(conns, kernel="set")
    hinted = first_fit(conns, kernel="set", runs=[len(conns)])
    assert slots(hinted) == slots(reference)


class TestSlotMatrix:
    def test_empty_run(self):
        occ = SlotMatrix(8)
        out = occ.place_run(np.zeros(0, dtype=np.intp),
                            np.zeros(0, dtype=np.intp))
        assert out.size == 0 and occ.num_slots == 0

    def test_single_link_grows_across_word_boundaries(self):
        # the same link placed run after run must walk slots 0,1,2,...
        # straight through the 64-bit word boundary
        occ = SlotMatrix(4)
        flat = np.array([2], dtype=np.intp)
        lens = np.array([1], dtype=np.intp)
        got = [int(occ.place_run(flat, lens)[0]) for _ in range(130)]
        assert got == list(range(130))
        assert occ.num_slots == 130

    def test_disjoint_run_shares_new_slot(self):
        # two disjoint members that fit nowhere open ONE shared slot --
        # the sequential-equivalence linchpin
        occ = SlotMatrix(4)
        flat = np.array([0, 1], dtype=np.intp)
        lens = np.array([1, 1], dtype=np.intp)
        assert occ.place_run(flat, lens).tolist() == [0, 0]
        # next run: link 0 is busy in slot 0, link 2 is not
        flat2 = np.array([0, 2], dtype=np.intp)
        assert occ.place_run(flat2, lens).tolist() == [1, 0]
