"""Tests for requests and request sets."""

import pytest

from repro.core.requests import Request, RequestSet


class TestRequest:
    def test_pair(self):
        assert Request(1, 2).pair == (1, 2)

    def test_defaults(self):
        r = Request(0, 1)
        assert r.size == 1
        assert r.tag == 0

    def test_str_with_size(self):
        assert "x8" in str(Request(0, 1, size=8))

    def test_hashable(self):
        assert len({Request(0, 1), Request(0, 1), Request(0, 2)}) == 2


class TestRequestSet:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            RequestSet([Request(3, 3)])

    def test_duplicate_rejected_by_default(self):
        with pytest.raises(ValueError, match="duplicate"):
            RequestSet.from_pairs([(0, 1), (0, 1)])

    def test_duplicates_allowed_when_opted_in(self):
        rs = RequestSet.from_pairs([(0, 1), (0, 1)], allow_duplicates=True)
        assert len(rs) == 2

    def test_from_pairs_sets_size(self):
        rs = RequestSet.from_pairs([(0, 1)], size=7)
        assert rs[0].size == 7

    def test_from_sized_pairs(self):
        rs = RequestSet.from_sized_pairs([(0, 1, 10), (1, 2, 20)])
        assert [r.size for r in rs] == [10, 20]

    def test_sequence_protocol(self):
        rs = RequestSet.from_pairs([(0, 1), (1, 2), (2, 3)])
        assert len(rs) == 3
        assert rs[1].pair == (1, 2)
        assert [r.src for r in rs] == [0, 1, 2]

    def test_pairs_property(self):
        rs = RequestSet.from_pairs([(0, 1), (2, 3)])
        assert rs.pairs == ((0, 1), (2, 3))

    def test_total_elements(self):
        rs = RequestSet.from_sized_pairs([(0, 1, 10), (1, 2, 20)])
        assert rs.total_elements() == 30

    def test_reordered(self):
        rs = RequestSet.from_pairs([(0, 1), (1, 2), (2, 3)])
        out = rs.reordered([2, 0, 1])
        assert out.pairs == ((2, 3), (0, 1), (1, 2))

    def test_reordered_rejects_non_permutation(self):
        rs = RequestSet.from_pairs([(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            rs.reordered([0, 0])

    def test_name_kept(self):
        rs = RequestSet.from_pairs([(0, 1)], name="demo")
        assert rs.name == "demo"
