"""Unit tests for compile-time protection planning.

``plan_scenario`` / ``ProtectedSchedule`` are the trust anchor of the
whole failover story: the run-time swap in
``simulate_compiled_faulty(recovery="protected")`` is only legal
because every covered backup schedule is a complete conflict-free
schedule on its faulted topology.  These tests pin the plan
classification, the degree-preserving packing preference, the
materialisation checks, and the refusal paths.
"""

import pytest

from repro.core import (
    ProtectedSchedule,
    ProtectionError,
    RequestSet,
    build_protection,
    get_scheduler,
    route_requests,
)
from repro.core.protection import default_scenarios, plan_scenario
from repro.patterns.classic import all_to_all_pattern, transpose_pattern
from repro.topology.faults import FaultyTopology
from repro.topology.linear import LinearArray
from repro.topology.torus import Torus2D


def compiled(topo, requests, scheduler="combined"):
    connections = route_requests(topo, requests)
    schedule = get_scheduler(scheduler)(connections, topo)
    schedule.validate(connections)
    return connections, schedule


@pytest.fixture(scope="module")
def torus():
    return Torus2D(4)


@pytest.fixture(scope="module")
def a2a(torus):
    return compiled(torus, all_to_all_pattern(16, size=4))


class TestPlanScenario:
    def test_non_transit_link_rejected(self, torus, a2a):
        connections, schedule = a2a
        with pytest.raises(ProtectionError, match="transit"):
            plan_scenario(torus, connections, schedule, 0)  # inject fiber

    def test_unaffected_when_no_route_crosses(self, torus):
        # A single one-hop connection touches exactly one transit fiber;
        # every other scenario is unaffected.
        requests = RequestSet.from_pairs([(0, 1)])
        connections, schedule = compiled(torus, requests)
        used = set(connections[0].link_set)
        spare = next(
            l for l in default_scenarios(torus) if l not in used
        )
        plan = plan_scenario(torus, connections, schedule, spare)
        assert plan.kind == "unaffected"
        assert plan.affected == ()
        assert plan.delta_k == 0
        assert plan.covered and plan.degree_preserving

    def test_affected_set_is_exact(self, torus, a2a):
        connections, schedule = a2a
        link = next(
            l for l in default_scenarios(torus)
            if any(l in c.link_set for c in connections)
        )
        plan = plan_scenario(torus, connections, schedule, link)
        assert set(plan.affected) == {
            c.index for c in connections if link in c.link_set
        }
        assert plan.covered
        # Every affected connection got a detour and a placement.
        assert set(plan.detours) == set(plan.affected)
        assert set(plan.placements) == set(plan.affected)

    def test_detours_avoid_failed_fiber(self, torus, a2a):
        connections, schedule = a2a
        for link in default_scenarios(torus)[:8]:
            plan = plan_scenario(torus, connections, schedule, link)
            for path in plan.detours.values():
                assert link not in path

    def test_uncovered_when_fault_partitions(self):
        # On a linear array the fiber 0->1 is the only way out of node
        # 0: its failure partitions the pair and the scenario must be
        # uncovered, never silently mis-planned.
        topo = LinearArray(5)
        requests = RequestSet.from_pairs([(0, 4)])
        connections, schedule = compiled(topo, requests)
        cut = connections[0].links[1]  # first transit hop, 0 -> 1
        plan = plan_scenario(topo, connections, schedule, cut)
        assert plan.kind == "uncovered"
        assert not plan.covered
        assert plan.reason and "0->4" in plan.reason

    def test_transpose_repairs_degree_preserving(self):
        # The transpose permutation leaves most fibers dark, so every
        # detour packs into existing spare slots: the packing preference
        # (own slot, then existing frames, only then backup frames)
        # must find those placements.
        topo = Torus2D(8)
        connections, schedule = compiled(topo, transpose_pattern(8))
        protected = build_protection(topo, connections, schedule)
        report = protected.overhead_report()
        assert report["uncovered"] == 0
        assert report["degree_preserving"] == report["scenarios"]
        assert report["max_delta_k"] == 0

    def test_deterministic(self, torus, a2a):
        connections, schedule = a2a
        link = default_scenarios(torus)[0]
        a = plan_scenario(torus, connections, schedule, link)
        b = plan_scenario(torus, connections, schedule, link)
        assert a == b


class TestProtectedSchedule:
    @pytest.fixture(scope="class")
    def protected(self, torus, a2a):
        connections, schedule = a2a
        return build_protection(torus, connections, schedule)

    def test_all_torus_scenarios_covered(self, torus, protected):
        assert protected.scenarios == default_scenarios(torus)
        assert all(protected.covers(l) for l in protected.scenarios)

    def test_backup_schedules_validate(self, protected):
        protected.validate()

    def test_backup_schedule_is_conflict_free_without_fiber(self, protected):
        for link in protected.scenarios[:6]:
            backup = protected.backup_schedule(link)
            backup.validate(protected.backup_connections(link))
            for cfg in backup:
                assert link not in cfg.used_links

    def test_slot_map_matches_placements(self, protected):
        link = next(
            l for l in protected.scenarios
            if protected.plans[l].affected
        )
        plan = protected.plans[link]
        slots = protected.slot_map_for(link)
        base = protected.base_slot_map()
        for i in plan.affected:
            assert slots[i] == plan.placements[i]
        for i in set(base) - set(plan.affected):
            assert slots[i] == base[i]
        assert max(slots.values()) < protected.degree_for(link)

    def test_routes_swap_only_affected(self, protected):
        link = next(
            l for l in protected.scenarios
            if protected.plans[l].affected
        )
        plan = protected.plans[link]
        routes = protected.routes_for(link)
        for i in plan.affected:
            assert routes[i] == frozenset(plan.detours[i])
            assert link not in routes[i]
        for c in protected.connections:
            if c.index not in plan.affected:
                assert routes[c.index] == c.link_set

    def test_unknown_scenario_raises_keyerror(self, protected):
        with pytest.raises(KeyError):
            protected.slot_map_for(10**6)

    def test_uncovered_scenario_refuses_failover_state(self):
        topo = LinearArray(5)
        requests = RequestSet.from_pairs([(0, 4), (4, 0)])
        connections, schedule = compiled(topo, requests)
        protected = build_protection(topo, connections, schedule)
        bad = next(l for l in protected.scenarios if not protected.covers(l))
        with pytest.raises(ProtectionError, match="uncovered"):
            protected.slot_map_for(bad)
        report = protected.overhead_report()
        assert report["uncovered"] > 0
        # validate() skips uncovered scenarios rather than failing.
        protected.validate()

    def test_scenario_subset_build(self, torus, a2a):
        connections, schedule = a2a
        links = default_scenarios(torus)[:3]
        protected = ProtectedSchedule.build(
            torus, connections, schedule, scenarios=links
        )
        assert protected.scenarios == tuple(sorted(links))

    def test_overhead_report_shape(self, protected):
        report = protected.overhead_report()
        assert report["scenarios"] == len(protected.scenarios)
        assert report["covered"] + report["uncovered"] == report["scenarios"]
        assert len(report["rows"]) == report["scenarios"]
        assert all(
            row["kind"] in ("unaffected", "repacked", "augmented", "uncovered")
            for row in report["rows"]
        )
        assert report["max_delta_k"] == max(
            row["delta_k"] for row in report["rows"]
        )

    def test_degraded_base_excludes_failed_fiber(self, torus):
        # Protection over an already-degraded topology never plans the
        # dead fiber again and detours avoid it too.
        dead = default_scenarios(torus)[0]
        ftopo = FaultyTopology(torus, {dead})
        requests = all_to_all_pattern(16, size=2)
        connections, schedule = compiled(ftopo, requests)
        protected = build_protection(ftopo, connections, schedule)
        assert dead not in protected.scenarios
        protected.validate()
