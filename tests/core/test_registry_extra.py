"""Tests for the scheduler registry and the ablation schedulers."""

import pytest

from repro.core.extra_schedulers import (
    coloring_repack_schedule,
    combined_repack_schedule,
    dsatur_schedule,
    largest_first_schedule,
    longest_first_schedule,
    random_restart_schedule,
    shortest_first_schedule,
)
from repro.core.paths import route_requests
from repro.core.registry import get_scheduler, scheduler_names
from repro.patterns.random_patterns import random_pattern


@pytest.fixture(scope="module")
def conns(request):
    from repro.topology.torus import Torus2D

    topo = Torus2D(8)
    return topo, route_requests(topo, random_pattern(64, 300, seed=11))


class TestRegistry:
    def test_paper_schedulers_first(self):
        assert scheduler_names()[:4] == ["greedy", "coloring", "aapc", "combined"]

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            get_scheduler("does-not-exist")

    @pytest.mark.parametrize("name", [
        "greedy", "coloring", "coloring-ratio", "aapc", "combined", "dsatur",
        "largest-first", "random-restart", "longest-first", "shortest-first",
        "coloring+repack", "combined+repack",
    ])
    def test_every_scheduler_produces_valid_schedule(self, conns, name):
        topo, connections = conns
        schedule = get_scheduler(name)(connections, topo)
        schedule.validate(connections)
        assert schedule.degree >= 1


class TestExtraSchedulers:
    def test_dsatur_competitive(self, conns):
        topo, connections = conns
        from repro.core.coloring import coloring_schedule

        dsatur = dsatur_schedule(connections).degree
        paper = coloring_schedule(connections).degree
        assert dsatur <= paper + 3

    def test_largest_first_valid(self, conns):
        _, connections = conns
        largest_first_schedule(connections).validate(connections)

    def test_random_restart_at_least_as_good_as_single(self, conns):
        _, connections = conns
        from repro.core.packing import first_fit
        import numpy as np

        best = random_restart_schedule(connections, restarts=10, seed=0).degree
        rng = np.random.default_rng(0)
        singles = [
            first_fit(connections, rng.permutation(len(connections)).tolist()).degree
            for _ in range(10)
        ]
        assert best <= min(singles) + 1  # same distribution, near-min

    def test_random_restart_deterministic(self, conns):
        _, connections = conns
        a = random_restart_schedule(connections, restarts=5, seed=3).degree
        b = random_restart_schedule(connections, restarts=5, seed=3).degree
        assert a == b

    def test_longest_vs_shortest_order(self, conns):
        """Longest-first should not lose to shortest-first by much; both
        must be valid (the interesting comparison is in the bench)."""
        _, connections = conns
        lf = longest_first_schedule(connections)
        sf = shortest_first_schedule(connections)
        lf.validate(connections)
        sf.validate(connections)

    def test_repack_variants_never_worse(self, conns):
        topo, connections = conns
        from repro.core.coloring import coloring_schedule
        from repro.core.combined import combined_schedule

        assert (
            coloring_repack_schedule(connections).degree
            <= coloring_schedule(connections).degree
        )
        assert (
            combined_repack_schedule(connections, topo).degree
            <= combined_schedule(connections, topo).degree
        )

    def test_empty_random_restart(self):
        assert random_restart_schedule([], restarts=3).degree == 0
