"""RouteTable must reproduce ``Topology.route`` byte for byte.

The vectorized k-ary builder re-derives dimension-order routing from
the topology's own ``signed_offset`` tables; these tests pin the
equivalence across radices (odd/even half-ring tie-breaks), both
tie-break policies, higher-dimensional cubes, and the generic
fallback topologies.
"""

import numpy as np
import pytest

from repro.core.requests import Request
from repro.core.routetable import RouteTable
from repro.topology.kary_ncube import KAryNCube, TieBreak
from repro.topology.mesh import Mesh2D
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D

VECTORIZED = [
    Torus2D(4),
    Torus2D(5, 3),                        # odd radix: no tie to break
    Torus2D(6, 4, TieBreak.POSITIVE),     # policy must flow through
    Torus2D(6, 4, TieBreak.BALANCED),
    KAryNCube((3, 4, 2)),                 # three dimensions
    KAryNCube((8,)),                      # one dimension
]
FALLBACK = [Mesh2D(4), Ring(12)]


@pytest.mark.parametrize(
    "topo", VECTORIZED + FALLBACK, ids=lambda t: t.signature
)
def test_all_pairs_matches_topology_route(topo):
    table = RouteTable.all_pairs(topo)
    n = topo.num_nodes
    assert len(table) == n * (n - 1)
    i = 0
    for s in range(n):
        for d in range(n):
            if s == d:
                continue
            assert table.src[i] == s and table.dst[i] == d
            assert table.path(i) == topo.route(s, d), (s, d)
            i += 1


def test_for_pairs_subset_and_total_links():
    topo = Torus2D(4)
    src, dst = [0, 5, 15], [9, 2, 0]
    table = RouteTable.for_pairs(topo, src, dst)
    paths = [topo.route(s, d) for s, d in zip(src, dst)]
    assert [table.path(i) for i in range(3)] == paths
    assert table.total_links() == sum(len(p) for p in paths)


def test_for_pairs_rejects_bad_input():
    topo = Torus2D(4)
    with pytest.raises(ValueError, match="self-pairs"):
        RouteTable.for_pairs(topo, [0, 3], [1, 3])
    with pytest.raises(ValueError, match="equal-length"):
        RouteTable.for_pairs(topo, [0, 1], [2])
    with pytest.raises(ValueError, match="equal-length"):
        RouteTable.for_pairs(topo, np.zeros((2, 2), dtype=int),
                             np.ones((2, 2), dtype=int))


def test_connections_match_route_requests():
    from repro.aapc.bounds import all_pairs_requests
    from repro.core.paths import route_requests

    topo = Torus2D(4, 3)
    requests = all_pairs_requests(topo)
    expected = route_requests(topo, requests)
    got = RouteTable.all_pairs(topo).connections(requests)
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        assert a.pair == b.pair and a.links == b.links


def test_connections_default_requests_and_length_check():
    topo = Torus2D(4)
    table = RouteTable.for_pairs(topo, [1, 2], [3, 7])
    conns = table.connections()
    assert [c.pair for c in conns] == [(1, 3), (2, 7)]
    with pytest.raises(ValueError, match="requests for a table"):
        table.connections([Request(1, 3)])


def test_empty_pair_list():
    table = RouteTable.for_pairs(Torus2D(4), [], [])
    assert len(table) == 0 and table.total_links() == 0
    assert table.connections() == []
