"""Tests for the ordered-AAPC and combined schedulers (Fig. 5, sec 3.4)."""

import pytest

from repro.aapc.phases import aapc_decomposition
from repro.core.aapc_ordered import aapc_rank_order, ordered_aapc_schedule
from repro.core.coloring import coloring_schedule
from repro.core.combined import combined_schedule
from repro.core.paths import route_requests
from repro.core.requests import RequestSet
from repro.patterns.classic import all_to_all_pattern
from repro.patterns.random_patterns import random_pattern


class TestOrderedAAPC:
    def test_requires_topology_or_map(self, torus8):
        conns = route_requests(torus8, RequestSet.from_pairs([(0, 1)]))
        with pytest.raises(ValueError):
            ordered_aapc_schedule(conns)

    def test_valid_schedule(self, torus8):
        conns = route_requests(torus8, random_pattern(64, 300, seed=5))
        schedule = ordered_aapc_schedule(conns, torus8)
        schedule.validate(conns)

    def test_bounded_by_aapc_phase_count(self, torus8):
        """The defining guarantee: never more configurations than the
        AAPC decomposition has phases, for any pattern."""
        phases = aapc_decomposition(torus8).num_phases
        for seed in range(3):
            conns = route_requests(torus8, random_pattern(64, 3800, seed=seed))
            assert ordered_aapc_schedule(conns, torus8).degree <= phases

    def test_all_to_all_exactly_phase_count(self, torus8):
        conns = route_requests(torus8, all_to_all_pattern(64))
        schedule = ordered_aapc_schedule(conns, torus8)
        schedule.validate(conns)
        assert schedule.degree == aapc_decomposition(torus8).num_phases == 64

    def test_sparse_patterns_merge_phases(self, torus8):
        """With few requests, greedy merges partially filled phases and
        lands well below the 64-phase bound."""
        conns = route_requests(torus8, random_pattern(64, 100, seed=2))
        assert ordered_aapc_schedule(conns, torus8).degree < 20

    def test_rank_order_groups_phases(self, torus8):
        conns = route_requests(torus8, random_pattern(64, 200, seed=4))
        phase_of = aapc_decomposition(torus8).phase_of
        order = aapc_rank_order(conns, phase_of)
        assert sorted(order) == list(range(len(conns)))
        # Connections of the same phase must be contiguous in the order.
        seen_phases = []
        for pos in order:
            p = phase_of[conns[pos].pair]
            if not seen_phases or seen_phases[-1] != p:
                seen_phases.append(p)
        assert len(seen_phases) == len(set(seen_phases))

    def test_explicit_phase_map_used(self, torus8):
        conns = route_requests(torus8, RequestSet.from_pairs([(0, 1), (1, 2)]))
        phase_of = {(0, 1): 0, (1, 2): 0}
        schedule = ordered_aapc_schedule(conns, phase_of=phase_of)
        schedule.validate(conns)
        assert schedule.degree == 1


class TestCombined:
    def test_picks_the_better(self, torus8):
        conns = route_requests(torus8, all_to_all_pattern(64))
        combined = combined_schedule(conns, torus8)
        coloring = coloring_schedule(conns)
        aapc = ordered_aapc_schedule(conns, torus8)
        assert combined.degree == min(coloring.degree, aapc.degree)

    def test_label_names_winner(self, torus8):
        conns = route_requests(torus8, all_to_all_pattern(64))
        combined = combined_schedule(conns, torus8)
        assert combined.scheduler == "combined(aapc)"

    @pytest.mark.parametrize("n", [100, 800, 2400])
    def test_never_worse_than_either(self, torus8, n):
        conns = route_requests(torus8, random_pattern(64, n, seed=n))
        combined = combined_schedule(conns, torus8)
        combined.validate(conns)
        assert combined.degree <= coloring_schedule(conns).degree
        assert combined.degree <= ordered_aapc_schedule(conns, torus8).degree
