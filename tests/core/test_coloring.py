"""Tests for the coloring scheduler (paper Fig. 4)."""

import pytest

from repro.core.coloring import coloring_schedule
from repro.core.greedy import greedy_schedule
from repro.core.paths import route_requests
from repro.core.requests import RequestSet
from repro.patterns.classic import (
    all_to_all_pattern,
    nearest_neighbour_2d,
    ring_pattern,
    shuffle_exchange_pattern,
)
from repro.patterns.random_patterns import random_pattern


class TestBasics:
    def test_empty(self):
        assert coloring_schedule([]).degree == 0

    def test_single(self, torus8):
        conns = route_requests(torus8, RequestSet.from_pairs([(0, 9)]))
        schedule = coloring_schedule(conns)
        schedule.validate(conns)
        assert schedule.degree == 1

    def test_zero_conflict_pattern_one_slot(self, torus8):
        conns = route_requests(
            torus8, RequestSet.from_pairs([(0, 1), (2, 3), (8, 9)])
        )
        assert coloring_schedule(conns).degree == 1

    def test_injection_clique_detected(self, torus8):
        pairs = [(0, d) for d in (1, 2, 3, 4)]
        conns = route_requests(torus8, RequestSet.from_pairs(pairs))
        schedule = coloring_schedule(conns)
        schedule.validate(conns)
        assert schedule.degree == 4

    def test_rejects_misindexed_connections(self, torus8):
        conns = route_requests(torus8, RequestSet.from_pairs([(0, 1), (1, 2)]))
        with pytest.raises(ValueError):
            coloring_schedule(list(reversed(conns)))

    def test_unknown_priority_rejected(self, torus8):
        conns = route_requests(torus8, RequestSet.from_pairs([(0, 1)]))
        with pytest.raises(ValueError):
            coloring_schedule(conns, priority="nope")


class TestPaperBehaviour:
    """Shape properties the paper reports for the coloring algorithm."""

    def test_ring_two_slots(self, torus8):
        conns = route_requests(torus8, ring_pattern(64))
        schedule = coloring_schedule(conns)
        schedule.validate(conns)
        assert schedule.degree == 2  # paper Table 3

    def test_nearest_neighbour_four_slots(self, torus8):
        conns = route_requests(torus8, nearest_neighbour_2d(8, 8))
        schedule = coloring_schedule(conns)
        schedule.validate(conns)
        assert schedule.degree == 4  # paper Table 3

    def test_shuffle_exchange_four_slots(self, torus8):
        conns = route_requests(torus8, shuffle_exchange_pattern(64))
        assert coloring_schedule(conns).degree == 4  # paper Table 3

    def test_all_to_all_near_paper(self, torus8):
        conns = route_requests(torus8, all_to_all_pattern(64))
        degree = coloring_schedule(conns).degree
        assert 75 <= degree <= 90  # paper: 83

    @pytest.mark.parametrize("n", [100, 400, 1200])
    def test_never_worse_than_greedy_on_random(self, torus8, n):
        conns = route_requests(torus8, random_pattern(64, n, seed=7))
        assert coloring_schedule(conns).degree <= greedy_schedule(conns).degree


class TestPaperRatioVariant:
    def test_ratio_rule_valid(self, torus8):
        conns = route_requests(torus8, random_pattern(64, 200, seed=3))
        schedule = coloring_schedule(conns, priority="paper-ratio")
        schedule.validate(conns)

    def test_ratio_rule_differs_from_default(self, torus8):
        """The documented discrepancy: the literal ratio rule colors
        worse than the most-constrained default on random patterns."""
        conns = route_requests(torus8, random_pattern(64, 800, seed=1))
        ratio = coloring_schedule(conns, priority="paper-ratio").degree
        default = coloring_schedule(conns).degree
        assert default <= ratio
