"""Tests for the scheduling perf counters and their reporting helpers."""

from repro.analysis.stats import perf_rows
from repro.core import perf
from repro.core.perf import PerfCounters


class TestPerfCounters:
    def test_reset_zeroes_in_place(self):
        c = perf.COUNTERS
        c.fit_tests += 7
        saved = perf.COUNTERS
        perf.reset()
        assert perf.COUNTERS is saved  # in-place: cached references stay valid
        assert c.fit_tests == 0

    def test_snapshot_has_derived_rates(self):
        c = PerfCounters(fit_tests=100, kernel_seconds=0.5,
                         route_cache_hits=3, route_cache_misses=1)
        snap = c.snapshot()
        assert snap["fit_tests"] == 100
        assert snap["route_cache_hit_rate"] == 0.75
        assert snap["fit_tests_per_second"] == 200.0

    def test_snapshot_rates_safe_when_idle(self):
        snap = PerfCounters().snapshot()
        assert snap["route_cache_hit_rate"] == 0.0
        assert snap["fit_tests_per_second"] == 0.0

    def test_merge_from_counters_and_dict(self):
        c = PerfCounters(fit_tests=1, kernel_calls=2)
        c.merge(PerfCounters(fit_tests=10))
        c.merge({"kernel_calls": 3, "route_cache_hit_rate": 0.9})  # extras ignored
        assert c.fit_tests == 11
        assert c.kernel_calls == 5

    def test_schedulers_count(self):
        from repro.core.greedy import greedy_schedule
        from repro.core.paths import route_requests
        from repro.patterns.random_patterns import random_pattern
        from repro.topology.torus import Torus2D

        topo = Torus2D(4)
        conns = route_requests(topo, random_pattern(16, 30, seed=0))
        perf.reset()
        greedy_schedule(conns)
        assert perf.COUNTERS.kernel_calls == 1
        assert perf.COUNTERS.kernel_seconds > 0


class TestPerfRows:
    def test_formats_by_suffix(self):
        snap = {"fit_tests": 12345, "kernel_seconds": 0.25,
                "route_cache_hit_rate": 0.5, "fit_tests_per_second": 2000.0}
        rows = dict(perf_rows(snap))
        assert rows["fit_tests"] == "12,345"
        assert rows["kernel_seconds"] == "0.2500 s"
        assert rows["route_cache_hit_rate"] == "50.0%"
        assert rows["fit_tests_per_second"] == "2,000/s"

    def test_defaults_to_live_counters(self):
        perf.reset()
        perf.COUNTERS.fit_tests = 42
        assert ("fit_tests", "42") in perf_rows()


class TestKernelBenchmark:
    def test_smoke_small_topology(self):
        from repro.analysis.perfbench import BENCH_SCHEDULERS, kernel_benchmark
        from repro.topology.torus import Torus2D

        report = kernel_benchmark(kernel="bitmask", repeats=1, topology=Torus2D(4))
        assert report["kernel"] == "bitmask"
        assert report["connections"] == 16 * 15
        for name in BENCH_SCHEDULERS:
            entry = report["schedulers"][name]
            assert entry["seconds"] > 0
            assert entry["ops_per_sec"] > 0
            assert entry["degree"] >= 1
        # The warm routing pass must have hit the cache.
        assert report["counters"]["route_cache_hits"] > 0
