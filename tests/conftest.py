"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.simulator.params import SimParams
from repro.topology.linear import LinearArray
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D


@pytest.fixture(scope="session")
def torus8() -> Torus2D:
    """The paper's 8x8 evaluation torus (session-scoped: routing is
    stateless and the AAPC cache keyed by its signature is reused)."""
    return Torus2D(8)


@pytest.fixture(scope="session")
def torus4() -> Torus2D:
    """The 4x4 torus of the paper's Fig. 1 example."""
    return Torus2D(4)


@pytest.fixture()
def linear5() -> LinearArray:
    """The 5-node linear array of the paper's Fig. 3 example."""
    return LinearArray(5)


@pytest.fixture()
def ring8() -> Ring:
    return Ring(8)


@pytest.fixture()
def params() -> SimParams:
    return SimParams()
