"""Tests for multicast compiled timing, plus multicast property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coloring import coloring_schedule
from repro.core.greedy import greedy_schedule
from repro.multicast import (
    MulticastRequest,
    MulticastSet,
    broadcast_pattern,
    route_multicasts,
    row_multicast_pattern,
)
from repro.multicast.sim import compiled_multicast_completion_time
from repro.simulator.params import SimParams
from repro.topology.torus import Torus2D

TORUS = Torus2D(4)


class TestCompiledMulticast:
    def test_broadcast_cost_independent_of_fanout(self, torus8, params):
        """One tree: K = 1, so a 64-element broadcast costs the same as
        a 64-element unicast."""
        result = compiled_multicast_completion_time(
            torus8, broadcast_pattern(64, size=64), params
        )
        assert result.degree == 1
        assert result.completion_time == params.compiled_startup + 16

    def test_beats_unicast_emulation(self, torus8, params):
        from repro.core.requests import RequestSet
        from repro.simulator.compiled import compiled_completion_time

        tree = compiled_multicast_completion_time(
            torus8, broadcast_pattern(64, size=64), params
        ).completion_time
        emulation = compiled_completion_time(
            torus8,
            RequestSet.from_pairs([(0, d) for d in range(1, 64)], size=64),
            params,
            scheduler="coloring",
        ).completion_time
        assert tree * 10 < emulation

    def test_row_multicast_single_slot(self, torus8, params):
        result = compiled_multicast_completion_time(
            torus8, row_multicast_pattern(8, 8, size=8), params
        )
        assert result.degree == 1
        assert len(result.delivered) == 8

    def test_unicast_only_schedulers_rejected(self, torus8, params):
        for name in ("aapc", "combined"):
            with pytest.raises(ValueError, match="unicast-only"):
                compiled_multicast_completion_time(
                    torus8, broadcast_pattern(64), params, scheduler=name
                )


@st.composite
def multicast_sets(draw):
    n = TORUS.num_nodes
    count = draw(st.integers(1, 8))
    requests = []
    for _ in range(count):
        src = draw(st.integers(0, n - 1))
        dsts = draw(
            st.sets(
                st.integers(0, n - 1).filter(lambda d: d != src),
                min_size=1, max_size=6,
            )
        )
        size = draw(st.integers(1, 50))
        requests.append(MulticastRequest(src, tuple(dsts), size=size))
    return MulticastSet(requests)


class TestMulticastProperties:
    @given(multicast_sets())
    @settings(max_examples=100, deadline=None)
    def test_tree_properties(self, ms):
        """Every routed multicast is a tree: one injection fiber, one
        ejection per destination, each link once, and the footprint is
        the union of the branch paths."""
        for conn in route_multicasts(TORUS, ms):
            assert len(set(conn.links)) == len(conn.links)
            kinds = [TORUS.link_info(l).kind.value for l in conn.links]
            assert kinds.count("inject") == 1
            assert kinds.count("eject") == conn.request.fanout
            union = set().union(*(set(p) for p in conn.branches.values()))
            assert conn.link_set == union

    @given(multicast_sets())
    @settings(max_examples=60, deadline=None)
    def test_scheduling_valid(self, ms):
        conns = route_multicasts(TORUS, ms)
        for scheduler in (greedy_schedule, coloring_schedule):
            schedule = scheduler(conns)
            schedule.validate(conns)
            assert schedule.degree <= len(conns)

    @given(multicast_sets())
    @settings(max_examples=40, deadline=None)
    def test_codegen_roundtrip(self, ms):
        from repro.multicast import (
            decode_multicast_registers,
            generate_multicast_registers,
        )

        conns = route_multicasts(TORUS, ms)
        schedule = greedy_schedule(conns)
        traced = decode_multicast_registers(
            generate_multicast_registers(TORUS, schedule)
        )
        assert traced == [
            {(c.request.src, frozenset(c.request.dsts)) for c in cfg}
            for cfg in schedule
        ]

    @given(multicast_sets())
    @settings(max_examples=40, deadline=None)
    def test_compiled_timing_bounds(self, ms):
        params = SimParams()
        result = compiled_multicast_completion_time(TORUS, ms, params)
        longest = max(
            -(-r.size // params.slot_payload) for r in ms
        )
        assert result.completion_time >= params.compiled_startup + longest
        assert all(d <= result.completion_time for d in result.delivered)
