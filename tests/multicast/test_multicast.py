"""Tests for multicast trees, scheduling and fanout codegen."""

import pytest

from repro.core.coloring import coloring_schedule
from repro.core.greedy import greedy_schedule
from repro.multicast import (
    MulticastRequest,
    MulticastSet,
    all_broadcast_pattern,
    broadcast_pattern,
    decode_multicast_registers,
    generate_multicast_registers,
    route_multicasts,
    row_multicast_pattern,
)


class TestRequests:
    def test_dsts_sorted_deduped(self):
        r = MulticastRequest(0, (5, 3, 5, 1))
        assert r.dsts == (1, 3, 5)
        assert r.fanout == 3

    def test_source_not_destination(self):
        with pytest.raises(ValueError, match="cannot be a destination"):
            MulticastRequest(2, (1, 2))

    def test_needs_destinations(self):
        with pytest.raises(ValueError):
            MulticastRequest(0, ())

    def test_set_total_fanout(self):
        ms = all_broadcast_pattern(8)
        assert len(ms) == 8
        assert ms.total_fanout() == 8 * 7


class TestRouting:
    def test_tree_shares_prefixes(self, torus8):
        """Two destinations down the same row reuse the common x-links:
        the tree is smaller than the two unicast paths."""
        req = MulticastRequest(0, (2, 3))
        (conn,) = route_multicasts(torus8, MulticastSet([req]))
        path_a = torus8.route(0, 2)
        path_b = torus8.route(0, 3)
        assert conn.num_links < len(path_a) + len(path_b)
        assert conn.link_set == set(path_a) | set(path_b)

    def test_branches_recorded(self, torus8):
        req = MulticastRequest(0, (1, 8))
        (conn,) = route_multicasts(torus8, MulticastSet([req]))
        assert set(conn.branches) == {1, 8}
        assert conn.branches[1] == torus8.route(0, 1)

    def test_broadcast_tree_spans_torus(self, torus8):
        (conn,) = route_multicasts(torus8, broadcast_pattern(64))
        # One injection fiber, 63 ejection fibers, plus transit links.
        kinds = [torus8.link_info(l).kind.value for l in conn.links]
        assert kinds.count("inject") == 1
        assert kinds.count("eject") == 63

    def test_dimension_order_union_is_tree(self, torus8):
        """Verified for every source: no switch is entered twice."""
        for src in (0, 27, 63):
            dsts = tuple(d for d in range(64) if d != src)
            route_multicasts(
                torus8, MulticastSet([MulticastRequest(src, dsts)])
            )  # raises MulticastTreeError on a remerge


class TestScheduling:
    def test_core_schedulers_accept_multicasts(self, torus8):
        conns = route_multicasts(torus8, row_multicast_pattern(8, 8))
        for scheduler in (greedy_schedule, coloring_schedule):
            schedule = scheduler(conns)
            schedule.validate(conns)

    def test_row_multicasts_are_parallel(self, torus8):
        """Eight disjoint row trees fit one slot."""
        conns = route_multicasts(torus8, row_multicast_pattern(8, 8))
        assert greedy_schedule(conns).degree == 1

    def test_all_broadcast_needs_many_slots(self, torus8):
        """64 spanning trees heavily share fibers; the degree must be at
        least the max fiber load."""
        from repro.core.bounds import max_link_load_bound

        conns = route_multicasts(torus8, all_broadcast_pattern(64))
        schedule = coloring_schedule(conns)
        schedule.validate(conns)
        assert schedule.degree >= max_link_load_bound(conns) >= 8

    def test_multicast_beats_unicast_fanout(self, torus8):
        """One broadcast tree = 1 slot; 63 unicasts from one source = 63
        slots.  The whole point of optical multicast."""
        from repro.core.paths import route_requests
        from repro.core.requests import RequestSet

        tree = route_multicasts(torus8, broadcast_pattern(64))
        assert greedy_schedule(tree).degree == 1
        unicasts = route_requests(
            torus8, RequestSet.from_pairs([(0, d) for d in range(1, 64)])
        )
        assert greedy_schedule(unicasts).degree == 63


class TestCodegen:
    def test_roundtrip_row_multicast(self, torus8):
        conns = route_multicasts(torus8, row_multicast_pattern(8, 8))
        schedule = greedy_schedule(conns)
        regs = generate_multicast_registers(torus8, schedule)
        traced = decode_multicast_registers(regs)
        assert traced == [
            {(c.request.src, frozenset(c.request.dsts)) for c in cfg}
            for cfg in schedule
        ]

    def test_roundtrip_broadcast(self, torus8):
        conns = route_multicasts(torus8, broadcast_pattern(64, root=9))
        schedule = greedy_schedule(conns)
        regs = generate_multicast_registers(torus8, schedule)
        traced = decode_multicast_registers(regs)
        assert traced[0] == {(9, frozenset(d for d in range(64) if d != 9))}

    def test_fanout_words(self, torus8):
        """Some switch input must drive more than one output."""
        conns = route_multicasts(torus8, broadcast_pattern(64))
        regs = generate_multicast_registers(torus8, greedy_schedule(conns))
        max_fanout = max(
            len(locals_)
            for words in regs.words.values()
            for word in words
            for locals_ in word
        )
        assert max_fanout >= 2

    def test_output_contention_rejected(self, torus8):
        from repro.multicast.codegen import FanoutState
        from repro.topology.switch import SwitchConfigError

        st = FanoutState(0)
        st.connect(10, 20)
        st.connect(10, 21)  # fanout: fine
        with pytest.raises(SwitchConfigError):
            st.connect(11, 20)  # two inputs on one output: never
