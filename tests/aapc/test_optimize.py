"""Tests for the iterated-local-search degree minimiser."""

import pytest

from repro.aapc.optimize import minimize_degree
from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.packing import first_fit
from repro.core.paths import route_requests
from repro.patterns.random_patterns import random_pattern


@pytest.fixture(scope="module")
def instance():
    from repro.topology.torus import Torus2D

    topo = Torus2D(8)
    conns = route_requests(topo, random_pattern(64, 250, seed=21))
    return conns


class TestMinimizeDegree:
    def test_improves_padded_schedule(self, instance):
        conns = instance
        padded = ConfigurationSet([Configuration([c]) for c in conns])
        out = minimize_degree(padded, rounds=2, seed=0)
        out.validate(conns)
        assert out.degree < len(conns)

    def test_never_worse_than_input(self, instance):
        conns = instance
        start = first_fit(conns)
        start_degree = start.degree
        out = minimize_degree(start, rounds=2, seed=0)
        out.validate(conns)
        assert out.degree <= start_degree

    def test_target_short_circuits(self, instance):
        conns = instance
        start = first_fit(conns)
        out = minimize_degree(start, target=10_000, rounds=50, seed=0)
        out.validate(conns)  # target already met: returns after descent

    def test_deterministic(self, instance):
        conns = instance
        a = minimize_degree(first_fit(conns), rounds=2, seed=5).degree
        b = minimize_degree(first_fit(conns), rounds=2, seed=5).degree
        assert a == b

    def test_custom_label(self, instance):
        conns = instance
        out = minimize_degree(first_fit(conns), rounds=0, scheduler="my-ils")
        assert out.scheduler == "my-ils"
