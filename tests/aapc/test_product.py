"""Generalized product decompositions (structural AAPC at any radix).

The product theorem only needs row/column phase-injectivity and
per-phase fiber-disjointness of the ring schedules; these tests
re-prove those properties at Latin and greedy radices, and then check
the composed phase matrix against the *real* routed topology -- every
phase's connections must be link-disjoint end to end.
"""

import numpy as np
import pytest

from repro.aapc.product import (
    RingSchedule,
    _greedy_ring_schedule,
    contention_free_ring_schedule,
    product_decomposition,
    validate_ring_schedule,
)
from repro.aapc.ring_latin import ring_link_load
from repro.topology.kary_ncube import TieBreak
from repro.topology.mesh import Mesh2D
from repro.topology.torus import Torus2D


@pytest.mark.parametrize("n", [1, 2, 4, 8])
def test_latin_radices_are_optimal(n):
    ring = contention_free_ring_schedule(n)
    assert ring.kind == "latin" and ring.num_phases == n
    validate_ring_schedule(ring)


@pytest.mark.parametrize("n", [9, 10, 12, 16])
def test_greedy_radices_validate(n):
    ring = contention_free_ring_schedule(n)
    assert ring.kind == "greedy"
    # at least the all-pairs fiber-load lower bound, and not far above
    load = ring_link_load(n)
    assert load <= ring.num_phases <= load + n
    validate_ring_schedule(ring)


def test_greedy_builder_is_deterministic():
    assert _greedy_ring_schedule(9) == _greedy_ring_schedule(9)


def test_validate_catches_corruption():
    ring = contention_free_ring_schedule(4)
    phi = [list(row) for row in ring.phi]
    phi[0][1] = phi[0][2]  # break row injectivity
    broken = RingSchedule(ring.n, tuple(tuple(r) for r in phi),
                          ring.num_phases, ring.kind)
    with pytest.raises(AssertionError, match="not injective"):
        validate_ring_schedule(broken)


def test_ring_schedule_rejects_bad_radix():
    with pytest.raises(ValueError, match="radix"):
        contention_free_ring_schedule(0)


def _assert_phases_link_disjoint(topo, dec):
    """Every phase's pairs routed on the real topology share no link."""
    phase = dec.phase_matrix
    n = topo.num_nodes
    for p in range(dec.num_phases):
        used: set[int] = set()
        for s, d in np.argwhere(phase == p):
            path = topo.route(int(s), int(d))
            assert used.isdisjoint(path), (p, int(s), int(d))
            used.update(path)


@pytest.mark.parametrize("topo, kind", [
    (Torus2D(4), "latin-product"),
    (Torus2D(4, 3), "latin-product"),
    (Torus2D(9, 4), "greedy-product"),   # mixed greedy x latin rings
])
def test_product_decomposition_is_contention_free(topo, kind):
    dec = product_decomposition(topo)
    assert dec.kind == kind
    n = topo.num_nodes
    phase = dec.phase_matrix
    assert phase.shape == (n, n)
    assert (phase.diagonal() == -1).all()
    off = phase[~np.eye(n, dtype=bool)]
    # compacted ids: every phase in range and every id used
    assert off.min() == 0 and off.max() == dec.num_phases - 1
    assert int(dec.phase_counts.sum()) == n * (n - 1)
    assert (np.bincount(off, minlength=dec.num_phases)
            == dec.phase_counts).all()
    _assert_phases_link_disjoint(topo, dec)


def test_8x8_product_reproduces_the_optimal_64_phases():
    dec = product_decomposition(Torus2D(8))
    assert dec.kind == "latin-product"
    assert dec.num_phases == 64
    assert dec.ring_phases == (8, 8)


def test_product_requires_balanced_kary():
    with pytest.raises(ValueError, match="k-ary n-cube"):
        product_decomposition(Mesh2D(4))
    with pytest.raises(ValueError, match="BALANCED"):
        product_decomposition(Torus2D(4, 4, TieBreak.POSITIVE))
