"""Tests for AAPC phase decompositions."""

import pytest

from repro.aapc.bounds import (
    aapc_injection_bound,
    aapc_link_bound,
    all_pairs_requests,
    torus_phase_optimum,
)
from repro.aapc.phases import (
    aapc_decomposition,
    aapc_phase_map,
    build_aapc_decomposition,
)
from repro.topology.kary_ncube import KAryNCube, TieBreak
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D


class TestBounds:
    def test_all_pairs_count(self, torus4):
        assert len(all_pairs_requests(torus4)) == 16 * 15

    def test_injection_bound(self, torus8):
        assert aapc_injection_bound(torus8) == 63

    def test_link_bound_matches_paper_formula(self, torus8):
        """The routed link bound on the balanced 8x8 torus equals the
        paper's N^3/8 = 64."""
        assert aapc_link_bound(torus8) == torus_phase_optimum(8) == 64

    def test_formula_rejects_odd(self):
        with pytest.raises(ValueError):
            torus_phase_optimum(7)


class TestPaperTorus:
    def test_64_phases_on_8x8(self, torus8):
        """The headline substrate result: our decomposition meets the
        paper's optimum of N^3/8 = 64 phases."""
        dec = aapc_decomposition(torus8)
        dec.validate()
        assert dec.num_phases == 64
        assert dec.num_phases == dec.lower_bound()

    def test_product_construction_used(self, torus8):
        dec = aapc_decomposition(torus8)
        assert "latin-product" in dec.schedule.scheduler

    def test_phase_map_covers_all_pairs(self, torus8):
        phase_of = aapc_phase_map(torus8)
        assert len(phase_of) == 64 * 63
        assert set(phase_of.values()) == set(range(64))

    def test_every_phase_is_near_permutation(self, torus8):
        """In the Latin-product schedule every node sends at most once
        and receives at most once per phase."""
        dec = aapc_decomposition(torus8)
        for cfg in dec.schedule:
            sources = [c.request.src for c in cfg]
            dests = [c.request.dst for c in cfg]
            assert len(set(sources)) == len(sources)
            assert len(set(dests)) == len(dests)

    def test_cached(self, torus8):
        assert aapc_decomposition(torus8) is aapc_decomposition(torus8)


class TestOtherTopologies:
    def test_ring8_optimal(self):
        dec = build_aapc_decomposition(Ring(8))
        dec.validate()
        assert dec.num_phases == dec.lower_bound() == 8

    def test_torus4_close_to_bound(self, torus4):
        dec = build_aapc_decomposition(torus4)
        dec.validate()
        assert dec.lower_bound() <= dec.num_phases <= dec.lower_bound() + 1

    def test_3d_torus(self):
        topo = KAryNCube((4, 4, 4))
        dec = build_aapc_decomposition(topo)
        dec.validate()
        assert dec.num_phases <= dec.lower_bound() + 2

    def test_rectangular_torus(self):
        topo = Torus2D(4, 2)
        dec = build_aapc_decomposition(topo)
        dec.validate()

    def test_positive_tie_break_falls_back_to_heuristic(self):
        """The Latin tables assume balanced routing; positive-policy
        tori must still get a valid (heuristic) decomposition."""
        topo = Torus2D(4, tie_break=TieBreak.POSITIVE)
        dec = build_aapc_decomposition(topo)
        dec.validate()
        assert "latin-product" not in dec.schedule.scheduler

    def test_fast_effort_valid(self):
        dec = build_aapc_decomposition(Torus2D(4), effort="fast")
        dec.validate()

    def test_linear_array_decomposition(self):
        from repro.topology.linear import LinearArray

        dec = build_aapc_decomposition(LinearArray(4))
        dec.validate()
        assert dec.num_phases >= dec.lower_bound()
