"""Tests for Latin ring schedules (the torus-AAPC building block)."""

import pytest

from repro.aapc.ring_latin import (
    PRECOMPUTED,
    latin_feasible,
    ring_latin_schedule,
    ring_link_load,
    ring_route,
    solve_ring_latin,
    validate_ring_latin,
)


class TestRingRoute:
    def test_self_pair_empty(self):
        assert ring_route(8, 3, 3) == ()

    def test_short_way_positive(self):
        assert ring_route(8, 0, 2) == (("+", 0), ("+", 1))

    def test_short_way_negative(self):
        assert ring_route(8, 0, 6) == (("-", 7), ("-", 6))

    def test_half_ring_balanced(self):
        assert all(sign == "+" for sign, _ in ring_route(8, 2, 6))
        assert all(sign == "-" for sign, _ in ring_route(8, 3, 7))

    def test_matches_topology_routing(self, ring8):
        """ring_route's fiber usage must agree with the Ring topology's
        transit links one-to-one."""
        for u in range(8):
            for v in range(8):
                if u == v:
                    continue
                labels = ring_route(8, u, v)
                transit = ring8.route(u, v)[1:-1]
                assert len(labels) == len(transit)
                directions = {ring8.link_info(l).direction for l in transit}
                assert directions == {s + "x" for s, _ in labels}


class TestFeasibility:
    def test_load_formula_even(self):
        # Balanced all-pairs ring load ~ n^2/8 for even n (the parity of
        # the half-ring split can add 1 when 8 does not divide n^2).
        for n in (4, 6, 8, 12):
            assert n * n // 8 <= ring_link_load(n) <= n * n // 8 + 1
        assert ring_link_load(8) == 8  # the perfect case

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8])
    def test_small_rings_feasible(self, n):
        assert latin_feasible(n)

    @pytest.mark.parametrize("n", [10, 12, 16])
    def test_large_rings_infeasible(self, n):
        assert not latin_feasible(n)
        assert solve_ring_latin(n) is None


class TestPrecomputedTables:
    @pytest.mark.parametrize("n", sorted(PRECOMPUTED))
    def test_table_valid(self, n):
        validate_ring_latin(n, PRECOMPUTED[n])

    def test_ring8_is_perfect(self):
        """Every fiber of the 8-ring is lit in every phase: the n = n^2/8
        coincidence that makes the 8x8 torus product optimal."""
        phi = PRECOMPUTED[8]
        per_phase_hops = [0] * 8
        for u in range(8):
            for v in range(8):
                per_phase_hops[phi[u][v]] += len(ring_route(8, u, v))
        assert per_phase_hops == [16] * 8  # 8 '+' fibers + 8 '-' fibers


class TestSolver:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_solver_finds_valid_schedule(self, n):
        phi = solve_ring_latin(n, seed=0)
        assert phi is not None
        validate_ring_latin(n, phi)

    def test_solver_deterministic(self):
        assert solve_ring_latin(5, seed=1) == solve_ring_latin(5, seed=1)

    def test_budget_exhaustion_returns_none(self):
        # Absurdly small budget on the hard instance.
        assert solve_ring_latin(8, seed=0, max_nodes=5, restarts=2) is None


class TestValidator:
    def test_detects_bad_row(self):
        phi = [row[:] for row in PRECOMPUTED[4]]
        phi[0][0] = phi[0][1]
        with pytest.raises(AssertionError, match="row 0"):
            validate_ring_latin(4, phi)

    def test_detects_link_clash(self):
        # A proper order-5 Latin square that puts (0,2) and (1,3) in the
        # same phase: both route over fiber 1->2 (+1), so rows and
        # columns pass but the disjointness check must fire.
        phi = [[1, 2, 0, 3, 4], [2, 1, 4, 0, 3], [0, 3, 1, 4, 2],
               [3, 4, 2, 1, 0], [4, 0, 3, 2, 1]]
        with pytest.raises(AssertionError, match="reuses fibers"):
            validate_ring_latin(5, phi)


class TestLookup:
    def test_precomputed_preferred(self):
        assert ring_latin_schedule(8) is PRECOMPUTED[8]

    def test_trivial_ring(self):
        assert ring_latin_schedule(1) == [[0]]

    def test_infeasible_returns_none(self):
        assert ring_latin_schedule(10) is None
