"""Gap-fill tests: embed_requests and pattern/embedding composition."""

from repro.core.requests import Request
from repro.patterns.embeddings import (
    embed_requests,
    gray_embedding,
    snake_embedding,
)


class TestEmbedRequests:
    def test_preserves_sizes_and_tags(self):
        emb = snake_embedding(4, 4)
        logical = [Request(0, 1, size=10, tag=3), Request(2, 3, size=20, tag=4)]
        out = embed_requests(logical, emb)
        assert [(r.size, r.tag) for r in out] == [(10, 3), (20, 4)]
        assert out[0].pair == (emb(0), emb(1))

    def test_name_attached(self):
        emb = gray_embedding(4, 4)
        out = embed_requests([Request(0, 1)], emb, name="demo")
        assert out.name == "demo"

    def test_snake_composes_with_scheduling(self):
        """A logical ring embedded by snake is all physically adjacent:
        degree 2 regardless of the numbering."""
        from repro.core.coloring import coloring_schedule
        from repro.core.paths import route_requests
        from repro.patterns.classic import ring_pattern
        from repro.topology.torus import Torus2D

        topo = Torus2D(8)
        rs = ring_pattern(64, embedding=snake_embedding(8, 8))
        conns = route_requests(topo, rs)
        assert all(c.num_links == 3 for c in conns)  # adjacent hops only
        assert coloring_schedule(conns).degree == 2
