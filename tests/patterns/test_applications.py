"""Tests for the application patterns (Tables 4-5 workloads)."""

import pytest

from repro.patterns.applications import (
    application_patterns,
    gs_pattern,
    p3m_pattern,
    tscf_pattern,
)


class TestGS:
    def test_linear_array_structure(self):
        pat = gs_pattern(64)
        assert len(pat.requests) == 126  # 63 bidirectional adjacencies
        assert all(abs(r.src - r.dst) == 1 for r in pat.requests)

    def test_boundary_row_message(self):
        assert all(r.size == 256 for r in gs_pattern(256).requests)

    def test_grid_must_divide(self):
        with pytest.raises(ValueError):
            gs_pattern(100)

    def test_kind(self):
        assert gs_pattern(64).kind == "shared array ref."


class TestTSCF:
    def test_hypercube(self):
        pat = tscf_pattern()
        assert len(pat.requests) == 384
        assert all((r.src ^ r.dst).bit_count() == 1 for r in pat.requests)

    def test_fixed_small_message(self):
        from repro.patterns.applications import TSCF_MESSAGE_SIZE

        sizes = {r.size for r in tscf_pattern().requests}
        assert sizes == {TSCF_MESSAGE_SIZE}

    def test_problem_size_label(self):
        assert tscf_pattern(5120).problem_size == "5120"


class TestP3MRedistributions:
    def test_p3m1_structure_64(self):
        """(:block,:block,:block) -> (:,:,:block) on 64^3: every source
        block spans 16 z-planes of 16x16x1 = 256 elements each."""
        pat = p3m_pattern(1, 64)
        sizes = {r.size for r in pat.requests}
        assert sizes == {256}
        from collections import Counter

        per_src = Counter(r.src for r in pat.requests)
        assert all(v in (15, 16) for v in per_src.values())  # self-pair drops one

    def test_p3m2_dense_64(self):
        pat = p3m_pattern(2, 64)
        assert len(pat.requests) == 4032  # all-to-all
        assert {r.size for r in pat.requests} == {64}

    def test_p3m3_same_as_p3m2(self):
        a = p3m_pattern(2, 64).requests
        b = p3m_pattern(3, 64).requests
        assert a.pairs == b.pairs

    def test_p3m4_is_reverse_of_p3m2(self):
        fwd = {r.pair for r in p3m_pattern(2, 64).requests}
        rev = {r.pair[::-1] for r in p3m_pattern(4, 64).requests}
        assert fwd == rev

    def test_32_cube_smaller_messages(self):
        big = p3m_pattern(2, 64).requests.total_elements()
        small = p3m_pattern(2, 32).requests.total_elements()
        assert small < big

    def test_invalid_number(self):
        with pytest.raises(ValueError):
            p3m_pattern(6, 64)


class TestP3M5:
    def test_26_neighbours(self):
        pat = p3m_pattern(5, 32)
        assert len(pat.requests) == 64 * 26

    def test_small_messages(self):
        """Calibration: messages stay small (see docstring note)."""
        assert max(r.size for r in p3m_pattern(5, 64).requests) <= 8

    def test_kind(self):
        assert p3m_pattern(5, 32).kind == "shared array ref."


class TestInventory:
    def test_table4_rows(self):
        pats = application_patterns()
        assert [p.name for p in pats] == [
            "GS", "TSCF", "P3M 1", "P3M 2", "P3M 3", "P3M 4", "P3M 5",
        ]

    def test_all_requests_valid_pe_range(self):
        for pat in application_patterns():
            for r in pat.requests:
                assert 0 <= r.src < 64
                assert 0 <= r.dst < 64
