"""Tests for whole application programs."""

import pytest

from repro.compiler.program import compile_program
from repro.patterns.programs import (
    application_programs,
    gs_program,
    p3m_program,
    tscf_program,
)
from repro.simulator.params import SimParams


class TestProgramStructure:
    def test_gs_single_phase(self):
        phases = gs_program(256, iterations=10)
        assert len(phases) == 1
        assert phases[0].repetitions == 10
        assert len(phases[0].requests) == 126

    def test_p3m_five_phases_in_order(self):
        phases = p3m_program(32)
        assert [p.name for p in phases] == [
            "p3m-1", "p3m-2", "p3m-3", "p3m-4", "p3m-5",
        ]

    def test_tscf(self):
        phases = tscf_program(timesteps=3)
        assert phases[0].repetitions == 3

    def test_inventory(self):
        programs = application_programs()
        assert set(programs) == {"GS", "TSCF", "P3M"}


class TestCompiledPrograms:
    def test_p3m_uses_varied_degrees(self, torus8):
        """The paper's fourth advantage: each phase gets its own degree
        (a fixed-degree dynamic network cannot do this)."""
        program = compile_program(torus8, p3m_program(32))
        degrees = set(program.degrees().values())
        assert len(degrees) >= 3

    def test_gs_program_time_scales_with_iterations(self, torus8):
        params = SimParams()
        once = compile_program(torus8, gs_program(64, iterations=1))
        many = compile_program(torus8, gs_program(64, iterations=7))
        assert many.communication_time(params) == 7 * once.communication_time(params)

    def test_program_driver_shapes(self, torus8):
        from repro.analysis.experiments import table5_programs

        rows = table5_programs(
            gs_grid=64, p3m_grid=32, degrees=(1, 10), topology=torus8
        )
        assert {r["program"] for r in rows} == {"GS", "TSCF", "P3M"}
        for r in rows:
            assert r["compiled"] < r["dynamic_1"]
            assert r["compiled"] < r["dynamic_10"]
