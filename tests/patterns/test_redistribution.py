"""Tests for block-cyclic redistribution patterns (Table 2 workloads)."""

import numpy as np
import pytest

from repro.patterns.redistribution import (
    BlockCyclic,
    Distribution,
    random_distribution,
    redistribution_pairs,
    redistribution_requests,
)


def brute_force_pairs(src: Distribution, dst: Distribution) -> dict:
    """Reference implementation: walk every array element."""
    out: dict[tuple[int, int], int] = {}
    extents = src.extents
    import itertools

    for index in itertools.product(*(range(e) for e in extents)):
        a, b = src.owner(index), dst.owner(index)
        if a != b:
            out[(a, b)] = out.get((a, b), 0) + 1
    return out


class TestBlockCyclic:
    def test_owner_formula(self):
        bc = BlockCyclic(procs=4, block=2)
        assert list(bc.owners(10)) == [0, 0, 1, 1, 2, 2, 3, 3, 0, 0]

    def test_pure_block(self):
        bc = BlockCyclic(procs=4, block=4)
        assert list(bc.owners(16)) == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4

    def test_undistributed_notation(self):
        assert BlockCyclic(1, 1).notation() == ":"
        assert BlockCyclic(8, 4).notation() == "8:block(4)"

    def test_invalid(self):
        with pytest.raises(ValueError):
            BlockCyclic(0, 1)


class TestDistribution:
    def test_num_pes(self):
        d = Distribution((8, 8), (BlockCyclic(4, 2), BlockCyclic(2, 4)))
        assert d.num_pes == 8

    def test_pe_id_dim0_fastest(self):
        d = Distribution((8, 8), (BlockCyclic(4, 2), BlockCyclic(2, 4)))
        assert d.pe_id((1, 0)) == 1
        assert d.pe_id((0, 1)) == 4

    def test_owner(self):
        d = Distribution((8, 8), (BlockCyclic(4, 2), BlockCyclic(2, 4)))
        assert d.owner((0, 0)) == 0
        assert d.owner((2, 0)) == 1
        assert d.owner((0, 4)) == 4

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            Distribution((8, 8), (BlockCyclic(4, 2),))

    def test_notation(self):
        d = Distribution((8, 8), (BlockCyclic(4, 2), BlockCyclic(1, 1)))
        assert d.notation() == "(4:block(2), :)"


class TestRedistributionPairs:
    @pytest.mark.parametrize("case", [
        # (extents, src specs, dst specs)
        ((8, 8), ((4, 2), (1, 1)), ((1, 1), (4, 2))),
        ((8, 8), ((2, 4), (4, 1)), ((4, 1), (2, 2))),
        ((4, 4, 4), ((2, 2), (2, 2), (1, 1)), ((1, 1), (2, 1), (2, 1))),
        ((6, 6), ((3, 1), (2, 3)), ((2, 3), (3, 2))),
    ])
    def test_matches_brute_force(self, case):
        extents, src_specs, dst_specs = case
        src = Distribution(extents, tuple(BlockCyclic(p, b) for p, b in src_specs))
        dst = Distribution(extents, tuple(BlockCyclic(p, b) for p, b in dst_specs))
        assert redistribution_pairs(src, dst) == brute_force_pairs(src, dst)

    def test_identity_redistribution_is_empty(self):
        d = Distribution((8, 8), (BlockCyclic(4, 2), BlockCyclic(2, 4)))
        assert redistribution_pairs(d, d) == {}

    def test_counts_conserve_elements(self):
        src = Distribution((16, 16), (BlockCyclic(4, 4), BlockCyclic(4, 4)))
        dst = Distribution((16, 16), (BlockCyclic(16, 1), BlockCyclic(1, 1)))
        moved = sum(redistribution_pairs(src, dst).values())
        import itertools

        stayed = sum(
            1
            for idx in itertools.product(range(16), range(16))
            if src.owner(idx) == dst.owner(idx)
        )
        assert moved + stayed == 16 * 16

    def test_different_arrays_rejected(self):
        a = Distribution((8,), (BlockCyclic(4, 2),))
        b = Distribution((16,), (BlockCyclic(4, 2),))
        with pytest.raises(ValueError):
            redistribution_pairs(a, b)

    def test_paper_all_to_all_case(self):
        """(:,:,:block) -> (:block,:block,:) on 64^3 over 64 PEs is the
        paper's dense redistribution: 4032 pairs (all-to-all)."""
        e = (64, 64, 64)
        src = Distribution(e, (BlockCyclic(1, 1), BlockCyclic(1, 1), BlockCyclic(64, 1)))
        dst = Distribution(e, (BlockCyclic(8, 8), BlockCyclic(8, 8), BlockCyclic(1, 1)))
        pairs = redistribution_pairs(src, dst)
        assert len(pairs) == 4032
        assert set(pairs.values()) == {64}  # 8x8x1 intersection each


class TestRedistributionRequests:
    def test_sizes_are_counts(self):
        e = (8, 8)
        src = Distribution(e, (BlockCyclic(4, 2), BlockCyclic(1, 1)))
        dst = Distribution(e, (BlockCyclic(1, 1), BlockCyclic(4, 2)))
        rs = redistribution_requests(src, dst)
        pairs = redistribution_pairs(src, dst)
        assert {r.pair: r.size for r in rs} == pairs

    def test_deterministic_order(self):
        e = (8, 8)
        src = Distribution(e, (BlockCyclic(4, 2), BlockCyclic(1, 1)))
        dst = Distribution(e, (BlockCyclic(1, 1), BlockCyclic(4, 2)))
        assert redistribution_requests(src, dst).pairs == \
            redistribution_requests(src, dst).pairs


class TestRandomDistribution:
    def test_total_pes_exact(self):
        for seed in range(20):
            d = random_distribution((64, 64, 64), 64, seed=seed)
            assert d.num_pes == 64

    def test_every_pe_owns_data(self):
        """The paper's 'precaution': block sizes keep all PEs populated."""
        for seed in range(20):
            d = random_distribution((64, 64, 64), 64, seed=seed)
            for extent, bc in zip(d.extents, d.dims):
                owners = set(bc.owners(extent))
                assert owners == set(range(bc.procs))

    def test_deterministic_given_seed(self):
        a = random_distribution((64, 64, 64), 64, seed=9)
        b = random_distribution((64, 64, 64), 64, seed=9)
        assert a == b

    def test_generator_advances(self):
        rng = np.random.default_rng(0)
        a = random_distribution((64, 64, 64), 64, seed=rng)
        b = random_distribution((64, 64, 64), 64, seed=rng)
        assert a != b or a.dims != b.dims  # overwhelmingly different

    def test_impossible_grid_rejected(self):
        with pytest.raises(ValueError):
            random_distribution((2, 2), 64, seed=0)
