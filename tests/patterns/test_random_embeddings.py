"""Tests for random-pattern generation and embeddings."""

import numpy as np
import pytest

from repro.patterns.embeddings import (
    embed_pairs,
    gray_embedding,
    identity_embedding,
    snake_embedding,
)
from repro.patterns.random_patterns import random_pattern


class TestRandomPattern:
    def test_distinct_pairs(self):
        rs = random_pattern(64, 500, seed=0)
        assert len(set(rs.pairs)) == 500

    def test_no_self_loops(self):
        rs = random_pattern(64, 4032, seed=0)
        assert all(s != d for s, d in rs.pairs)

    def test_full_density_is_all_to_all(self):
        rs = random_pattern(8, 56, seed=1)
        assert set(rs.pairs) == {(s, d) for s in range(8) for d in range(8) if s != d}

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            random_pattern(8, 57)

    def test_deterministic(self):
        assert random_pattern(64, 100, seed=5).pairs == random_pattern(64, 100, seed=5).pairs

    def test_generator_shared_state(self):
        rng = np.random.default_rng(0)
        a = random_pattern(64, 100, seed=rng)
        b = random_pattern(64, 100, seed=rng)
        assert a.pairs != b.pairs

    def test_roughly_uniform_sources(self):
        rs = random_pattern(64, 4000, seed=2)
        from collections import Counter

        counts = Counter(s for s, _ in rs.pairs)
        assert min(counts.values()) >= 40  # each node ~62.5 expected

    def test_size_attached(self):
        assert all(r.size == 16 for r in random_pattern(64, 10, seed=0, size=16))


class TestIdentityEmbedding:
    def test_maps_through(self):
        emb = identity_embedding(8)
        assert [emb(i) for i in range(8)] == list(range(8))

    def test_range_checked(self):
        with pytest.raises(ValueError):
            identity_embedding(8)(8)


class TestSnakeEmbedding:
    def test_consecutive_pes_adjacent(self, torus8):
        emb = snake_embedding(8, 8)
        for pe in range(63):
            assert torus8.distance(emb(pe), emb(pe + 1)) == 1

    def test_closes_into_hamiltonian_cycle(self, torus8):
        emb = snake_embedding(8, 8)
        assert torus8.distance(emb(63), emb(0)) == 1

    def test_bijective(self):
        emb = snake_embedding(8, 8)
        assert sorted(emb(i) for i in range(64)) == list(range(64))


class TestGrayEmbedding:
    def test_bijective(self):
        emb = gray_embedding(8, 8)
        assert sorted(emb(i) for i in range(64)) == list(range(64))

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            gray_embedding(6, 6)

    def test_reduces_hypercube_dilation(self, torus8):
        """Gray placement should make hypercube neighbours closer on
        average than the identity numbering."""
        from repro.patterns.classic import hypercube_pattern

        ident = hypercube_pattern(64)
        gray = hypercube_pattern(64, embedding=gray_embedding(8, 8))
        dist = lambda rs: sum(torus8.distance(s, d) for s, d in rs.pairs)
        assert dist(gray) <= dist(ident)


class TestEmbedPairs:
    def test_applies_mapping(self):
        emb = snake_embedding(4, 2)
        rs = embed_pairs([(0, 1), (3, 4)], emb)
        assert rs.pairs == ((emb(0), emb(1)), (emb(3), emb(4)))
