"""Tests for the classic pattern generators (Table 3 workloads)."""

import pytest

from repro.patterns.classic import (
    all_to_all_pattern,
    bit_reversal_pattern,
    hypercube_pattern,
    nearest_neighbour_2d,
    nearest_neighbour_3d,
    ring_pattern,
    shuffle_exchange_pattern,
    transpose_pattern,
)


class TestPaperConnectionCounts:
    """Table 3's connection counts must match exactly."""

    def test_ring(self):
        assert len(ring_pattern(64)) == 128

    def test_nearest_neighbour(self):
        assert len(nearest_neighbour_2d(8, 8)) == 256

    def test_hypercube(self):
        assert len(hypercube_pattern(64)) == 384

    def test_shuffle_exchange(self):
        assert len(shuffle_exchange_pattern(64)) == 126

    def test_all_to_all(self):
        assert len(all_to_all_pattern(64)) == 4032


class TestRing:
    def test_unidirectional(self):
        rs = ring_pattern(8, bidirectional=False)
        assert len(rs) == 8
        assert all((r.dst - r.src) % 8 == 1 for r in rs)

    def test_wraps(self):
        rs = ring_pattern(8)
        assert (7, 0) in rs.pairs
        assert (0, 7) in rs.pairs


class TestNearestNeighbour:
    def test_2d_degree_four(self):
        rs = nearest_neighbour_2d(8, 8)
        from collections import Counter

        out = Counter(r.src for r in rs)
        assert set(out.values()) == {4}

    def test_3d_degree_26(self):
        rs = nearest_neighbour_3d((4, 4, 4))
        from collections import Counter

        out = Counter(r.src for r in rs)
        assert set(out.values()) == {26}
        assert len(rs) == 64 * 26

    def test_3d_small_radix_rejected(self):
        with pytest.raises(ValueError, match="radix"):
            nearest_neighbour_3d((2, 4, 4))

    def test_3d_sizes_by_neighbour_order(self):
        rs = nearest_neighbour_3d((4, 4, 4), sizes=(9, 3, 1))
        sizes = sorted({r.size for r in rs})
        assert sizes == [1, 3, 9]
        from collections import Counter

        per_node = Counter(r.size for r in rs if r.src == 0)
        assert per_node[9] == 6   # faces
        assert per_node[3] == 12  # edges
        assert per_node[1] == 8   # corners


class TestHypercube:
    def test_symmetric(self):
        pairs = set(hypercube_pattern(16).pairs)
        assert all((d, s) in pairs for s, d in pairs)

    def test_neighbours_differ_one_bit(self):
        for s, d in hypercube_pattern(64).pairs:
            x = s ^ d
            assert x and (x & (x - 1)) == 0

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            hypercube_pattern(12)


class TestShuffleExchange:
    def test_fixed_points_dropped(self):
        pairs = shuffle_exchange_pattern(64).pairs
        rol = lambda i: ((i << 1) | (i >> 5)) & 63
        shuffle_pairs = [(s, d) for s, d in pairs if d == rol(s) and d != s ^ 1]
        # 0 and 63 are rotation fixed points: 62 shuffle connections.
        sources = {s for s, _ in shuffle_pairs}
        assert 0 not in sources and 63 not in sources

    def test_exchange_half(self):
        pairs = set(shuffle_exchange_pattern(64).pairs)
        for i in range(64):
            assert (i, i ^ 1) in pairs

    def test_shuffle_is_rotate_left(self):
        pairs = set(shuffle_exchange_pattern(8).pairs)
        assert (1, 2) in pairs   # 001 -> 010
        assert (4, 1) in pairs   # 100 -> 001
        assert (3, 6) in pairs   # 011 -> 110


class TestOthers:
    def test_transpose_excludes_diagonal(self):
        rs = transpose_pattern(8)
        assert len(rs) == 64 - 8
        assert all(s != d for s, d in rs.pairs)

    def test_transpose_is_involution(self):
        pairs = set(transpose_pattern(8).pairs)
        assert all((d, s) in pairs for s, d in pairs)

    def test_bit_reversal(self):
        rs = bit_reversal_pattern(8)
        assert (1, 4) in rs.pairs  # 001 -> 100
        assert (3, 6) in rs.pairs  # 011 -> 110
        assert all(s != d for s, d in rs.pairs)

    def test_all_to_all_complete(self):
        pairs = set(all_to_all_pattern(8).pairs)
        assert len(pairs) == 56
        assert all((s, d) in pairs for s in range(8) for d in range(8) if s != d)

    def test_size_propagated(self):
        assert all(r.size == 5 for r in ring_pattern(8, size=5))
