"""Tests for the dynamic-pattern mechanisms (standing AAPC, multihop)."""

import pytest

from repro.dynamic_patterns import (
    MultihopEmulation,
    OnlineRequest,
    StandingAllToAll,
    random_online_workload,
)
from repro.simulator.params import SimParams


class TestWorkload:
    def test_deterministic(self):
        a = random_online_workload(64, 50, seed=1)
        b = random_online_workload(64, 50, seed=1)
        assert a == b

    def test_no_self_messages(self):
        for r in random_online_workload(64, 200, seed=2):
            assert r.src != r.dst
            assert 0 <= r.src < 64
            assert 0 <= r.dst < 64

    def test_arrivals_nondecreasing(self):
        wl = random_online_workload(64, 100, seed=3)
        arrivals = [r.arrival for r in wl]
        assert arrivals == sorted(arrivals)

    def test_mean_gap_scales_span(self):
        fast = random_online_workload(64, 200, mean_gap=1.0, seed=4)
        slow = random_online_workload(64, 200, mean_gap=8.0, seed=4)
        assert slow[-1].arrival > fast[-1].arrival

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineRequest(src=1, dst=1, size=4, arrival=0)
        with pytest.raises(ValueError):
            OnlineRequest(src=0, dst=1, size=0, arrival=0)
        with pytest.raises(ValueError):
            random_online_workload(64, 0)


class TestStandingAllToAll:
    @pytest.fixture(scope="class")
    def service(self, request):
        from repro.topology.torus import Torus2D

        return StandingAllToAll(Torus2D(8))

    def test_frame_is_aapc(self, service):
        assert service.frame_length == 64

    def test_single_message_latency(self, service):
        """One 4-element message = one phase visit: latency < frame."""
        wl = [OnlineRequest(src=0, dst=1, size=4, arrival=0)]
        out = service.simulate(wl)
        m = out.messages[0]
        assert m.delivered is not None
        assert m.delivered - m.first_attempt <= service.frame_length

    def test_multichunk_message_spans_frames(self, service):
        wl = [OnlineRequest(src=0, dst=1, size=12, arrival=0)]
        out = service.simulate(wl)
        latency = out.messages[0].delivered - out.messages[0].first_attempt
        assert latency > 2 * service.frame_length  # 3 chunks, one per frame

    def test_same_pair_messages_queue(self, service):
        wl = [
            OnlineRequest(src=0, dst=1, size=4, arrival=0),
            OnlineRequest(src=0, dst=1, size=4, arrival=0),
        ]
        out = service.simulate(wl)
        d = sorted(m.delivered for m in out.messages)
        assert d[1] - d[0] >= service.frame_length  # second waits a frame

    def test_different_pairs_independent(self, service):
        wl = [
            OnlineRequest(src=0, dst=1, size=4, arrival=0),
            OnlineRequest(src=2, dst=3, size=4, arrival=0),
        ]
        out = service.simulate(wl)
        for m in out.messages:
            assert m.delivered - m.first_attempt <= service.frame_length

    def test_random_workload_completes(self, service):
        wl = random_online_workload(64, 150, seed=5)
        out = service.simulate(wl)
        assert all(m.delivered is not None for m in out.messages)


class TestMultihopEmulation:
    @pytest.fixture(scope="class")
    def emu(self):
        from repro.topology.torus import Torus2D

        return MultihopEmulation(Torus2D(8))

    def test_short_frame(self, emu):
        assert emu.frame_length < 16  # hypercube needs ~8 slots, not 64

    def test_ecube_next_hop(self, emu):
        assert emu.next_hop(0b000000, 0b000101) == 0b000001
        assert emu.next_hop(0b000001, 0b000101) == 0b000101

    def test_hops_is_hamming(self, emu):
        assert emu.hops(0, 63) == 6
        assert emu.hops(5, 4) == 1

    def test_neighbour_message_single_hop(self, emu):
        wl = [OnlineRequest(src=0, dst=1, size=4, arrival=0)]
        out = emu.simulate(wl)
        assert out.messages[0].delivered <= emu.frame_length

    def test_far_message_multihop(self, emu):
        wl = [OnlineRequest(src=0, dst=63, size=4, arrival=0)]
        out = emu.simulate(wl)
        # 6 logical hops, each waits for its channel's slot.
        latency = out.messages[0].delivered
        assert latency > 2 * emu.frame_length
        assert latency <= 7 * emu.frame_length

    def test_random_workload_completes(self, emu):
        wl = random_online_workload(64, 150, seed=6)
        out = emu.simulate(wl)
        assert all(m.delivered is not None for m in out.messages)

    def test_requires_power_of_two(self):
        from repro.topology.kary_ncube import KAryNCube

        with pytest.raises(ValueError):
            MultihopEmulation(KAryNCube((3, 3)))


class TestMechanismComparison:
    def test_multihop_beats_standing_for_neighbours(self):
        """Short logical distances amortise the shorter frame."""
        from repro.topology.torus import Torus2D

        topo = Torus2D(8)
        standing = StandingAllToAll(topo)
        multihop = MultihopEmulation(topo)
        wl = [OnlineRequest(src=i, dst=i ^ 1, size=4, arrival=0) for i in range(64)]
        t_standing = standing.simulate(wl).completion_time
        t_multihop = multihop.simulate(wl).completion_time
        assert t_multihop < t_standing

    def test_dynamic_reservation_accepts_arrivals(self, torus8):
        from repro.core.requests import RequestSet
        from repro.simulator.dynamic import simulate_dynamic

        rs = RequestSet.from_pairs([(0, 1), (2, 3)], size=4)
        out = simulate_dynamic(torus8, rs, 2, SimParams(), arrivals=[0, 100])
        late = out.messages[1]
        assert late.first_attempt == 100
        assert late.delivered > 100

    def test_arrival_length_mismatch(self, torus8):
        from repro.core.requests import RequestSet
        from repro.simulator.dynamic import simulate_dynamic

        rs = RequestSet.from_pairs([(0, 1)], size=4)
        with pytest.raises(ValueError):
            simulate_dynamic(torus8, rs, 1, SimParams(), arrivals=[0, 1])
