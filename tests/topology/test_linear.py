"""Tests for the linear-array topology (the Fig. 3 substrate)."""

import pytest

from repro.topology.base import RoutingError
from repro.topology.linear import LinearArray
from repro.topology.links import LinkKind


class TestConstruction:
    def test_counts(self):
        lin = LinearArray(5)
        assert lin.num_nodes == 5
        assert lin.num_transit_links == 8
        assert lin.num_links == 2 * 5 + 8

    def test_too_small(self):
        with pytest.raises(ValueError):
            LinearArray(1)

    def test_signature(self):
        assert LinearArray(5).signature == "linear:5"


class TestLinkIds:
    def test_inject_eject_layout(self):
        lin = LinearArray(4)
        assert lin.inject_link(0) == 0
        assert lin.inject_link(3) == 3
        assert lin.eject_link(0) == 4
        assert lin.eject_link(3) == 7
        assert lin.transit_link_base == 8

    def test_forward_backward_distinct(self):
        lin = LinearArray(4)
        fwd = {lin.forward_link(i) for i in range(3)}
        bwd = {lin.backward_link(i) for i in range(3)}
        assert fwd.isdisjoint(bwd)

    def test_boundary_fibers_rejected(self):
        lin = LinearArray(4)
        with pytest.raises(ValueError):
            lin.forward_link(3)
        with pytest.raises(ValueError):
            lin.backward_link(3)

    def test_link_info_roundtrip(self):
        lin = LinearArray(5)
        for link_id in lin.iter_links():
            info = lin.link_info(link_id)
            assert info.kind in LinkKind

    def test_link_info_out_of_range(self):
        lin = LinearArray(5)
        with pytest.raises(ValueError):
            lin.link_info(lin.num_links)


class TestRouting:
    def test_route_has_inject_and_eject(self):
        lin = LinearArray(5)
        path = lin.route(0, 2)
        assert path[0] == lin.inject_link(0)
        assert path[-1] == lin.eject_link(2)

    def test_forward_route_links(self):
        lin = LinearArray(5)
        path = lin.route(0, 2)
        assert path == (lin.inject_link(0), lin.forward_link(0),
                        lin.forward_link(1), lin.eject_link(2))

    def test_backward_route_links(self):
        lin = LinearArray(5)
        path = lin.route(3, 1)
        assert path == (lin.inject_link(3), lin.backward_link(2),
                        lin.backward_link(1), lin.eject_link(1))

    def test_adjacent_route_length(self):
        lin = LinearArray(5)
        assert len(lin.route(2, 3)) == 3  # inject + 1 transit + eject

    def test_self_route_rejected(self):
        with pytest.raises(RoutingError):
            LinearArray(5).route(2, 2)

    def test_bad_node_rejected(self):
        with pytest.raises(RoutingError):
            LinearArray(5).route(0, 5)

    def test_route_length_matches_route(self):
        lin = LinearArray(6)
        for s in range(6):
            for d in range(6):
                if s != d:
                    assert lin.route_length(s, d) == len(lin.route(s, d))

    def test_opposite_routes_share_no_links(self):
        lin = LinearArray(5)
        fwd = set(lin.route(0, 4))
        bwd = set(lin.route(4, 0))
        assert fwd.isdisjoint(bwd)
