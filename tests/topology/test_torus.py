"""Tests for the 2-D torus (the paper's machine)."""

import pytest

from repro.topology.links import LinkKind
from repro.topology.torus import TieBreak, Torus2D


class TestNumbering:
    def test_paper_numbering(self, torus4):
        # Fig. 1 numbers nodes row-major: id = x + width*y.
        assert torus4.node(0, 0) == 0
        assert torus4.node(3, 0) == 3
        assert torus4.node(0, 1) == 4
        assert torus4.node(3, 3) == 15

    def test_xy_roundtrip(self, torus8):
        for node in torus8.iter_nodes():
            x, y = torus8.xy(node)
            assert torus8.node(x, y) == node

    def test_square_default(self):
        t = Torus2D(6)
        assert (t.width, t.height) == (6, 6)

    def test_rectangular(self):
        t = Torus2D(4, 2)
        assert t.num_nodes == 8
        assert t.coords(5) == (1, 1)


class TestRouting:
    def test_xy_order(self, torus8):
        path = torus8.route(torus8.node(0, 0), torus8.node(2, 3))
        dirs = [torus8.link_info(l).direction for l in path[1:-1]]
        assert dirs == ["+x", "+x", "+y", "+y", "+y"]

    def test_wraparound_shorter(self, torus8):
        # 0 -> 7 in x should wrap: distance 1, not 7.
        assert torus8.distance(torus8.node(0, 0), torus8.node(7, 0)) == 1

    def test_max_distance(self, torus8):
        # Farthest pair on 8x8 with balanced routing: (4, 4) offsets.
        assert torus8.distance(torus8.node(0, 0), torus8.node(4, 4)) == 8

    def test_five_by_five_switch(self, torus8):
        """Every switch has 4 transit in/out plus the PE pair (Fig. 1)."""
        from repro.topology.switch import build_switches

        switches = build_switches(torus8)
        for sw in switches.values():
            assert len(sw.in_links) == 5
            assert len(sw.out_links) == 5

    def test_transit_link_count(self, torus8):
        assert torus8.num_transit_links == 4 * 64


class TestTieBreak:
    def test_balanced_splits_half_ring(self):
        t = Torus2D(8, tie_break=TieBreak.BALANCED)
        pos = neg = 0
        for y in range(8):
            for x in range(8):
                off = t.signed_offset(x, (x + 4) % 8, 0)
                if off > 0:
                    pos += 1
                else:
                    neg += 1
        assert pos == neg

    def test_positive_always_positive(self):
        t = Torus2D(8, tie_break=TieBreak.POSITIVE)
        for x in range(8):
            assert t.signed_offset(x, (x + 4) % 8, 0) == 4


class TestFig1Example:
    """The configuration {(4,1),(5,3),(6,10),(8,9),(11,2)} of Fig. 1."""

    def test_configuration_is_conflict_free(self, torus4):
        from repro.core.configuration import Configuration
        from repro.core.paths import route_requests
        from repro.core.requests import RequestSet

        requests = RequestSet.from_pairs([(4, 1), (5, 3), (6, 10), (8, 9), (11, 2)])
        cfg = Configuration()
        for conn in route_requests(torus4, requests):
            cfg.add(conn)  # raises on any conflict
        assert len(cfg) == 5
