"""Tests for the ring and 2-D mesh topologies."""

import pytest

from repro.topology.links import LinkKind
from repro.topology.mesh import Mesh2D
from repro.topology.ring import Ring


class TestRing:
    def test_counts(self, ring8):
        assert ring8.num_nodes == 8
        assert ring8.num_transit_links == 16  # one +, one - fiber per node

    def test_wrap_route(self, ring8):
        path = ring8.route(7, 0)
        assert len(path) == 3  # inject, one +x hop, eject

    def test_long_way_never_taken(self, ring8):
        for s in range(8):
            for d in range(8):
                if s != d:
                    assert len(ring8.route(s, d)) - 2 <= 4

    def test_signature(self, ring8):
        assert ring8.signature.startswith("ring:8")


class TestMesh:
    def test_no_wraparound(self):
        mesh = Mesh2D(4)
        # 0 -> 3 along x must take 3 hops (no wrap link).
        assert len(mesh.route(0, 3)) - 2 == 3

    def test_xy_routing(self):
        mesh = Mesh2D(4)
        path = mesh.route(mesh.node(0, 0), mesh.node(2, 2))
        dirs = [mesh.link_info(l).direction for l in path[1:-1]]
        assert dirs == ["+x", "+x", "+y", "+y"]

    def test_boundary_link_rejected(self):
        mesh = Mesh2D(3)
        with pytest.raises(ValueError):
            mesh.transit_link(mesh.node(2, 0), 0)  # +x off the edge
        with pytest.raises(ValueError):
            mesh.transit_link(mesh.node(0, 0), 3)  # -y off the edge

    def test_mesh_longer_than_torus(self, torus4):
        mesh = Mesh2D(4)
        longer = 0
        for s in range(16):
            for d in range(16):
                if s == d:
                    continue
                if len(mesh.route(s, d)) > len(torus4.route(s, d)):
                    longer += 1
        assert longer > 0  # wraparound must help some pairs

    def test_rectangular(self):
        mesh = Mesh2D(4, 2)
        assert mesh.num_nodes == 8
        assert mesh.xy(5) == (1, 1)

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            Mesh2D(0)

    def test_link_info_kinds(self):
        mesh = Mesh2D(3)
        kinds = {mesh.link_info(l).kind for l in mesh.iter_links()}
        assert kinds == set(LinkKind)
