"""Tests for the generalized k-ary n-cube."""

import pytest

from repro.topology.base import RoutingError
from repro.topology.kary_ncube import KAryNCube, TieBreak
from repro.topology.links import LinkKind


class TestCoordinates:
    def test_dim0_fastest(self):
        cube = KAryNCube((4, 2))
        assert cube.coords(0) == (0, 0)
        assert cube.coords(1) == (1, 0)
        assert cube.coords(4) == (0, 1)

    def test_node_at_roundtrip(self):
        cube = KAryNCube((3, 4, 5))
        for node in cube.iter_nodes():
            assert cube.node_at(cube.coords(node)) == node

    def test_node_at_reduces_mod_radix(self):
        cube = KAryNCube((4, 4))
        assert cube.node_at((5, -1)) == cube.node_at((1, 3))

    def test_node_at_wrong_arity(self):
        with pytest.raises(ValueError):
            KAryNCube((4, 4)).node_at((1, 2, 3))

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            KAryNCube(())
        with pytest.raises(ValueError):
            KAryNCube((4, 0))


class TestSignedOffset:
    def test_short_way_positive(self):
        cube = KAryNCube((8,))
        assert cube.signed_offset(0, 3, 0) == 3

    def test_short_way_negative(self):
        cube = KAryNCube((8,))
        assert cube.signed_offset(0, 6, 0) == -2

    def test_zero(self):
        cube = KAryNCube((8,))
        assert cube.signed_offset(5, 5, 0) == 0

    def test_half_ring_balanced_by_parity(self):
        cube = KAryNCube((8,), tie_break=TieBreak.BALANCED)
        assert cube.signed_offset(0, 4, 0) == 4     # even source: +
        assert cube.signed_offset(1, 5, 0) == -4    # odd source: -

    def test_half_ring_positive_policy(self):
        cube = KAryNCube((8,), tie_break=TieBreak.POSITIVE)
        assert cube.signed_offset(1, 5, 0) == 4

    def test_offset_magnitude_at_most_half(self):
        cube = KAryNCube((7,))
        for s in range(7):
            for d in range(7):
                assert abs(cube.signed_offset(s, d, 0)) <= 3


class TestRouting:
    def test_dimension_order(self):
        cube = KAryNCube((4, 4))
        path = cube.route(cube.node_at((0, 0)), cube.node_at((1, 1)))
        infos = [cube.link_info(l) for l in path]
        assert infos[0].kind is LinkKind.INJECT
        assert infos[-1].kind is LinkKind.EJECT
        directions = [i.direction for i in infos[1:-1]]
        assert directions == ["+x", "+y"]

    def test_route_endpoints_consistent(self):
        cube = KAryNCube((4, 4))
        for s in range(16):
            for d in range(16):
                if s == d:
                    continue
                infos = [cube.link_info(l) for l in cube.route(s, d)]
                # consecutive links chain: dst of one is src of next
                for a, b in zip(infos, infos[1:]):
                    assert a.dst == b.src
                assert infos[0].src == s
                assert infos[-1].dst == d

    def test_route_transit_count_is_distance(self):
        cube = KAryNCube((5, 3))
        for s in range(15):
            for d in range(15):
                if s != d:
                    assert len(cube.route(s, d)) - 2 == cube.distance(s, d)

    def test_distance_symmetric_for_odd_radix(self):
        cube = KAryNCube((5, 5))
        for s in range(25):
            for d in range(25):
                assert cube.distance(s, d) == cube.distance(d, s)

    def test_self_route_rejected(self):
        with pytest.raises(RoutingError):
            KAryNCube((4, 4)).route(3, 3)

    def test_three_dims(self):
        cube = KAryNCube((4, 4, 4))
        assert cube.num_nodes == 64
        path = cube.route(0, cube.node_at((1, 1, 1)))
        assert len(path) == 2 + 3


class TestTransitLinks:
    def test_info_roundtrip(self):
        cube = KAryNCube((4, 3))
        seen = set()
        for node in cube.iter_nodes():
            for dim in range(2):
                for positive in (True, False):
                    link = cube.transit_link(node, dim, positive)
                    assert link not in seen
                    seen.add(link)
                    info = cube.link_info(link)
                    assert info.kind is LinkKind.TRANSIT
                    assert info.src == node
        assert len(seen) == cube.num_transit_links

    def test_neighbour_correct(self):
        cube = KAryNCube((4, 4))
        info = cube.link_info(cube.transit_link(0, 0, False))
        assert info.dst == cube.node_at((3, 0))
        assert info.direction == "-x"

    def test_bad_dim(self):
        with pytest.raises(ValueError):
            KAryNCube((4,)).transit_link(0, 1, True)


class TestSignature:
    def test_distinguishes_tie_break(self):
        a = KAryNCube((8, 8), tie_break=TieBreak.BALANCED)
        b = KAryNCube((8, 8), tie_break=TieBreak.POSITIVE)
        assert a.signature != b.signature
