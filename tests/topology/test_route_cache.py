"""Tests for the per-topology LRU route cache."""

from repro.core import perf
from repro.topology.faults import FaultyTopology
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D


class TestRouteCache:
    def test_hit_returns_same_path_and_counts(self):
        topo = Torus2D(4)
        perf.reset()
        first = topo.route(0, 5)
        assert perf.COUNTERS.route_cache_misses == 1
        assert perf.COUNTERS.route_cache_hits == 0
        second = topo.route(0, 5)
        assert second == first
        assert second is first  # cached object, not a recomputation
        assert perf.COUNTERS.route_cache_hits == 1

    def test_distinct_pairs_are_distinct_entries(self):
        topo = Torus2D(4)
        assert topo.route(1, 2) != topo.route(2, 1)

    def test_lru_eviction(self):
        topo = Ring(8)
        topo.route_cache_size = 2
        perf.reset()
        topo.route(0, 1)
        topo.route(0, 2)
        topo.route(0, 3)  # evicts (0, 1), the least recently used
        misses = perf.COUNTERS.route_cache_misses
        topo.route(0, 1)
        assert perf.COUNTERS.route_cache_misses == misses + 1
        # (0, 3) is still resident.
        topo.route(0, 3)
        assert perf.COUNTERS.route_cache_misses == misses + 1

    def test_lru_touch_on_hit(self):
        topo = Ring(8)
        topo.route_cache_size = 2
        topo.route(0, 1)
        topo.route(0, 2)
        topo.route(0, 1)  # refresh (0, 1)
        topo.route(0, 3)  # evicts (0, 2), now the oldest
        perf.reset()
        topo.route(0, 1)
        assert perf.COUNTERS.route_cache_hits == 1
        topo.route(0, 2)
        assert perf.COUNTERS.route_cache_misses == 1

    def test_invalidate_route_cache(self):
        topo = Torus2D(4)
        topo.route(0, 5)
        topo.invalidate_route_cache()
        perf.reset()
        topo.route(0, 5)
        assert perf.COUNTERS.route_cache_misses == 1

    def test_fault_injection_invalidates(self):
        base = Torus2D(4)
        topo = FaultyTopology(base)
        healthy = topo.route(0, 1)
        on_path = healthy[1]  # first transit fiber of the path
        topo.fail_link(on_path)
        rerouted = topo.route(0, 1)
        assert on_path not in rerouted
        topo.restore_link(on_path)
        assert topo.route(0, 1) == healthy


class TestRestoreInvalidation:
    """Regression: ``restore_link`` must also invalidate cached routes.

    A cached detour is still *valid* after the repair, but keeping it
    would silently pin traffic to the longer path -- and, worse, a
    cached detour through a fiber that is cut *later* would be served
    stale.  The audit confirmed ``FaultyTopology.restore_link`` calls
    ``invalidate_route_cache``; these tests pin that behaviour.
    """

    def test_restore_recomputes_not_serves_cached_detour(self):
        topo = FaultyTopology(Torus2D(4))
        healthy = topo.route(0, 1)
        cut = healthy[1]
        topo.fail_link(cut)
        detour = topo.route(0, 1)
        assert detour != healthy
        topo.restore_link(cut)
        perf.reset()
        after = topo.route(0, 1)
        # Recomputed (cache was invalidated), and back on the short path.
        assert perf.COUNTERS.route_cache_misses == 1
        assert after == healthy

    def test_restore_one_while_other_still_cut(self):
        # Restoring A must not resurrect any route through still-cut B.
        topo = FaultyTopology(Torus2D(4))
        healthy = topo.route(0, 1)
        a = healthy[1]
        topo.fail_link(a)
        detour = topo.route(0, 1)
        b = detour[1]  # first fiber of the detour
        topo.fail_link(b)
        topo.route(0, 1)  # caches a second detour avoiding both
        topo.restore_link(a)
        after = topo.route(0, 1)
        assert b not in after
        assert after == healthy  # a is usable again

    def test_restore_of_unused_link_still_invalidates(self):
        # The invalidation is global (cheap and simple); pin that a
        # restore that touches no cached route still flushes.
        topo = FaultyTopology(Torus2D(4))
        spare = topo.route(5, 6)[1]
        topo.fail_link(spare)
        topo.route(0, 1)
        topo.restore_link(spare)
        perf.reset()
        topo.route(0, 1)
        assert perf.COUNTERS.route_cache_misses == 1
