"""Tests for the per-topology LRU route cache."""

from repro.core import perf
from repro.topology.faults import FaultyTopology
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D


class TestRouteCache:
    def test_hit_returns_same_path_and_counts(self):
        topo = Torus2D(4)
        perf.reset()
        first = topo.route(0, 5)
        assert perf.COUNTERS.route_cache_misses == 1
        assert perf.COUNTERS.route_cache_hits == 0
        second = topo.route(0, 5)
        assert second == first
        assert second is first  # cached object, not a recomputation
        assert perf.COUNTERS.route_cache_hits == 1

    def test_distinct_pairs_are_distinct_entries(self):
        topo = Torus2D(4)
        assert topo.route(1, 2) != topo.route(2, 1)

    def test_lru_eviction(self):
        topo = Ring(8)
        topo.route_cache_size = 2
        perf.reset()
        topo.route(0, 1)
        topo.route(0, 2)
        topo.route(0, 3)  # evicts (0, 1), the least recently used
        misses = perf.COUNTERS.route_cache_misses
        topo.route(0, 1)
        assert perf.COUNTERS.route_cache_misses == misses + 1
        # (0, 3) is still resident.
        topo.route(0, 3)
        assert perf.COUNTERS.route_cache_misses == misses + 1

    def test_lru_touch_on_hit(self):
        topo = Ring(8)
        topo.route_cache_size = 2
        topo.route(0, 1)
        topo.route(0, 2)
        topo.route(0, 1)  # refresh (0, 1)
        topo.route(0, 3)  # evicts (0, 2), now the oldest
        perf.reset()
        topo.route(0, 1)
        assert perf.COUNTERS.route_cache_hits == 1
        topo.route(0, 2)
        assert perf.COUNTERS.route_cache_misses == 1

    def test_invalidate_route_cache(self):
        topo = Torus2D(4)
        topo.route(0, 5)
        topo.invalidate_route_cache()
        perf.reset()
        topo.route(0, 5)
        assert perf.COUNTERS.route_cache_misses == 1

    def test_fault_injection_invalidates(self):
        base = Torus2D(4)
        topo = FaultyTopology(base)
        healthy = topo.route(0, 1)
        on_path = healthy[1]  # first transit fiber of the path
        topo.fail_link(on_path)
        rerouted = topo.route(0, 1)
        assert on_path not in rerouted
        topo.restore_link(on_path)
        assert topo.route(0, 1) == healthy
