"""Tests for the directed-link model."""

from repro.topology.links import Link, LinkKind


class TestLinkKind:
    def test_three_kinds(self):
        assert {k.value for k in LinkKind} == {"inject", "eject", "transit"}


class TestLink:
    def test_inject_str(self):
        assert str(Link(LinkKind.INJECT, 3, 3)) == "inject(3)"

    def test_eject_str(self):
        assert str(Link(LinkKind.EJECT, 5, 5)) == "eject(5)"

    def test_transit_str_includes_direction(self):
        assert str(Link(LinkKind.TRANSIT, 1, 2, direction="+x")) == "1->2[+x]"

    def test_links_are_hashable_and_comparable(self):
        a = Link(LinkKind.TRANSIT, 1, 2, direction="+x")
        b = Link(LinkKind.TRANSIT, 1, 2, direction="+x")
        c = Link(LinkKind.TRANSIT, 1, 2, direction="-x")
        assert a == b
        assert a != c
        assert len({a, b, c}) == 2

    def test_frozen(self):
        import dataclasses

        import pytest

        link = Link(LinkKind.INJECT, 0, 0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            link.src = 1  # type: ignore[misc]
