"""Tests for the crossbar switch model."""

import pytest

from repro.topology.switch import (
    CrossbarSwitch,
    SwitchConfigError,
    SwitchState,
    build_switches,
)


class TestSwitchState:
    def test_connect_and_query(self):
        st = SwitchState(0)
        st.connect(10, 20)
        assert st.output_of(10) == 20
        assert st.output_of(11) is None

    def test_input_reuse_rejected(self):
        st = SwitchState(0)
        st.connect(10, 20)
        with pytest.raises(SwitchConfigError):
            st.connect(10, 21)

    def test_output_reuse_rejected(self):
        st = SwitchState(0)
        st.connect(10, 20)
        with pytest.raises(SwitchConfigError):
            st.connect(11, 20)


class TestBuildSwitches:
    def test_torus_switch_ports(self, torus8):
        switches = build_switches(torus8)
        assert len(switches) == 64
        sw = switches[0]
        assert sw.radix == 5
        assert sw.in_links[0] == torus8.inject_link(0)
        assert sw.out_links[0] == torus8.eject_link(0)

    def test_every_transit_link_appears_twice(self, torus8):
        """Each transit fiber is an output of one switch and an input of
        another."""
        switches = build_switches(torus8)
        as_input = [l for sw in switches.values() for l in sw.in_links[1:]]
        as_output = [l for sw in switches.values() for l in sw.out_links[1:]]
        assert sorted(as_input) == sorted(as_output)
        assert len(as_input) == torus8.num_transit_links


class TestEncodeDecode:
    def test_roundtrip(self, torus8):
        switches = build_switches(torus8)
        sw = switches[9]
        st = SwitchState(9)
        st.connect(sw.in_links[1], sw.out_links[0])  # transit -> PE
        st.connect(sw.in_links[0], sw.out_links[2])  # PE -> transit
        word = sw.encode(st)
        back = sw.decode(word)
        assert back.mapping == st.mapping

    def test_dark_switch_word(self, torus8):
        switches = build_switches(torus8)
        sw = switches[3]
        word = sw.encode(SwitchState(3))
        assert word == (-1,) * 5

    def test_wrong_node_rejected(self, torus8):
        switches = build_switches(torus8)
        with pytest.raises(SwitchConfigError):
            switches[0].encode(SwitchState(1))

    def test_foreign_link_rejected(self, torus8):
        switches = build_switches(torus8)
        st = SwitchState(0)
        st.connect(999999, torus8.eject_link(0))
        with pytest.raises(SwitchConfigError):
            switches[0].encode(st)
