"""Tests for the Omega multistage network."""

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.coloring import coloring_schedule
from repro.core.bounds import max_link_load_bound
from repro.core.paths import route_requests
from repro.core.requests import RequestSet
from repro.topology.omega import OmegaNetwork


class TestConstruction:
    def test_counts(self):
        om = OmegaNetwork(8)
        assert om.num_nodes == 8
        assert om.bits == 3
        assert om.num_transit_links == 24

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            OmegaNetwork(12)

    def test_signature(self):
        assert OmegaNetwork(16).signature == "omega:16"


class TestRouting:
    def test_path_length_is_stage_count(self):
        om = OmegaNetwork(16)
        for s in range(16):
            for d in range(16):
                if s != d:
                    assert len(om.route(s, d)) == 2 + om.bits

    def test_self_routing_reaches_destination(self):
        """The route's final stage wire must sit at row == destination."""
        om = OmegaNetwork(32)
        for s in range(32):
            for d in range(32):
                if s == d:
                    continue
                last = om.route(s, d)[-2]
                info = om.link_info(last)
                assert info.src == d

    def test_unique_paths(self):
        om = OmegaNetwork(8)
        assert om.route(0, 5) == om.route(0, 5)

    def test_known_route(self):
        """0 -> 5 on omega-8: rows 0 ->(shuffle) 0 ->bit1 1 ->(shuffle)
        2 ->bit0 2 ->(shuffle) 4 ->bit1 5."""
        om = OmegaNetwork(8)
        rows = [om.link_info(l).src for l in om.route(0, 5)[1:-1]]
        assert rows == [1, 2, 5]


class TestClassicMINFacts:
    def test_identity_shift_is_conflict_free(self):
        """The +1 cyclic shift is a classic omega-passable permutation."""
        om = OmegaNetwork(16)
        rs = RequestSet.from_pairs([(i, (i + 1) % 16) for i in range(16)])
        conns = route_requests(om, rs)
        assert greedy_schedule(conns).degree == 1

    def test_bit_reversal_conflicts(self):
        """Bit reversal is a classic omega worst case: some center-stage
        wire carries ~sqrt(N) connections, and coloring schedules it at
        exactly that load."""
        om = OmegaNetwork(64)
        pairs = []
        for i in range(64):
            rev = int(f"{i:06b}"[::-1], 2)
            if rev != i:
                pairs.append((i, rev))
        conns = route_requests(om, RequestSet.from_pairs(pairs))
        load = max_link_load_bound(conns)
        assert load == 7  # sqrt(64) - 1 (the diagonal's fixed points drop one)
        assert coloring_schedule(conns).degree == load

    def test_all_to_all_wire_load_is_n(self):
        """Every stage wire carries exactly N of the N(N-1)+N pairs; with
        self-pairs excluded the load is N or N-1."""
        om = OmegaNetwork(8)
        rs = RequestSet.from_pairs(
            [(s, d) for s in range(8) for d in range(8) if s != d]
        )
        conns = route_requests(om, rs)
        from repro.core.conflicts import link_load

        loads = {
            link: load
            for link, load in link_load(conns).items()
            if om.link_info(link).kind.value == "transit"
        }
        assert set(loads.values()) <= {7, 8}

    def test_schedulers_work_unchanged(self):
        om = OmegaNetwork(16)
        rs = RequestSet.from_pairs(
            [(s, d) for s in range(16) for d in range(16) if s != d]
        )
        conns = route_requests(om, rs)
        schedule = coloring_schedule(conns)
        schedule.validate(conns)
        assert schedule.degree >= 15  # injection bound

    def test_codegen_not_applicable_but_simulator_is(self):
        """The compiled simulator (which only needs routes + schedules)
        runs on the MIN."""
        from repro.simulator.compiled import compiled_completion_time
        from repro.simulator.params import SimParams

        om = OmegaNetwork(16)
        rs = RequestSet.from_pairs([(i, (i + 3) % 16) for i in range(16)], size=8)
        result = compiled_completion_time(om, rs, SimParams())
        assert result.completion_time > 0
        assert all(m.delivered is not None for m in result.messages)
