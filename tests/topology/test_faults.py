"""Tests for fault-tolerant routing and rescheduling."""

import pytest

from repro.core.combined import combined_schedule
from repro.core.paths import route_requests
from repro.patterns.classic import nearest_neighbour_2d
from repro.topology.base import RoutingError
from repro.topology.faults import FaultyTopology
from repro.topology.linear import LinearArray
from repro.topology.torus import Torus2D


@pytest.fixture()
def faulty8():
    return FaultyTopology(Torus2D(8))


class TestFailureManagement:
    def test_no_failures_routes_identically(self, faulty8, torus8):
        for s, d in ((0, 9), (5, 60), (63, 0)):
            assert faulty8.route(s, d) == torus8.route(s, d)

    def test_pe_fibers_cannot_fail(self, faulty8, torus8):
        with pytest.raises(ValueError, match="transit"):
            faulty8.fail_link(torus8.inject_link(0))
        with pytest.raises(ValueError, match="transit"):
            faulty8.fail_link(torus8.eject_link(0))

    def test_restore(self, faulty8, torus8):
        link = torus8.route(0, 1)[1]
        faulty8.fail_link(link)
        rerouted = faulty8.route(0, 1)
        faulty8.restore_link(link)
        assert faulty8.route(0, 1) == torus8.route(0, 1)
        assert rerouted != torus8.route(0, 1)

    def test_signature_reflects_failures(self, faulty8, torus8):
        before = faulty8.signature
        faulty8.fail_link(torus8.route(0, 1)[1])
        assert faulty8.signature != before


class TestRerouting:
    def test_avoids_failed_link(self, faulty8, torus8):
        link = torus8.route(0, 2)[1]  # first +x fiber of the path
        faulty8.fail_link(link)
        path = faulty8.route(0, 2)
        assert link not in path
        assert faulty8.link_info(path[0]).src == 0
        assert faulty8.link_info(path[-1]).dst == 2

    def test_reroute_is_a_chain(self, faulty8, torus8):
        for transit in torus8.route(0, 9)[1:-1]:
            faulty8.fail_link(transit)
        path = faulty8.route(0, 9)
        infos = [faulty8.link_info(l) for l in path]
        for a, b in zip(infos, infos[1:]):
            assert a.dst == b.src

    def test_yx_fallback_stays_minimal(self, faulty8, torus8):
        """Failing one XY link should reroute at equal length via YX."""
        base_len = len(torus8.route(0, 9))
        faulty8.fail_link(torus8.route(0, 9)[1])
        assert len(faulty8.route(0, 9)) == base_len

    def test_bfs_fallback_on_heavy_damage(self, torus8):
        # Fail every +x and -x fiber in row 0 except the 7<->0 pair:
        # traffic must detour through other rows.
        faulty = FaultyTopology(Torus2D(8))
        for x in range(6):
            faulty.fail_link(torus8.transit_link(torus8.node(x, 0), 0, True))
            faulty.fail_link(torus8.transit_link(torus8.node(x + 1, 0), 0, False))
        path = faulty.route(torus8.node(0, 0), torus8.node(3, 0))
        assert faulty._failed.isdisjoint(path)

    def test_disconnection_raises(self):
        # A 2-node linear array dies with its two fibers cut.
        lin = LinearArray(2)
        faulty = FaultyTopology(lin, failed=[lin.forward_link(0)])
        faulty.fail_link(lin.backward_link(0))
        with pytest.raises(RoutingError, match="disconnected"):
            faulty.route(0, 1)

    def test_linear_array_base_supported(self):
        lin = LinearArray(5)
        faulty = FaultyTopology(lin)
        assert faulty.route(0, 3) == lin.route(0, 3)


class TestReschedulingUnderFaults:
    def test_schedule_valid_after_failures(self, torus8):
        faulty = FaultyTopology(Torus2D(8))
        victims = [torus8.transit_link(n, 0, True) for n in (0, 9, 18)]
        for v in victims:
            faulty.fail_link(v)
        requests = nearest_neighbour_2d(8, 8)
        connections = route_requests(faulty, requests)
        for c in connections:
            assert faulty.failed_links.isdisjoint(c.link_set)
        schedule = combined_schedule(connections, faulty)
        schedule.validate(connections)

    def test_failures_inflate_degree_boundedly(self, torus8):
        healthy = Torus2D(8)
        faulty = FaultyTopology(Torus2D(8))
        for n in (0, 9, 18, 27):
            faulty.fail_link(torus8.transit_link(n, 0, True))
        requests = nearest_neighbour_2d(8, 8)
        base = combined_schedule(route_requests(healthy, requests), healthy).degree
        degraded = combined_schedule(route_requests(faulty, requests), faulty).degree
        assert base <= degraded <= base + 4
