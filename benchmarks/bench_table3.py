"""Table 3: multiplexing degree on frequently used patterns.

Ring, nearest neighbour, hypercube, shuffle-exchange and all-to-all on
the 8x8 torus.  Greedy is reported as the mean over random request
orders ("an arbitrary order" -- the paper's greedy values match the
random-order average, not any structured order).  Checks the combined
column against the paper cell by cell.
"""

from __future__ import annotations

import pytest

from conftest import full_protocol, once

from repro.analysis import experiments as exp
from repro.analysis.tables import format_table


def test_table3(benchmark, torus8, aapc_warm):
    orders = 25 if full_protocol() else 10
    rows = once(benchmark, exp.table3, greedy_orders=orders, seed=0)

    print()
    print(format_table(
        ["pattern", "conns", "greedy", "coloring", "aapc", "combined",
         "improv%", "paper g/c/a/comb"],
        [
            (
                r["pattern"], r["connections"], r["greedy"], r["coloring"],
                r["aapc"], r["combined"], r["improvement_pct"],
                "/".join(str(v) for v in exp.PAPER_TABLE3[r["pattern"]][1:]),
            )
            for r in rows
        ],
        title="Table 3 (frequently used patterns)",
    ))

    by_name = {r["pattern"]: r for r in rows}
    # Connection counts must equal the paper's exactly.
    for name, (conns, *_rest) in exp.PAPER_TABLE3.items():
        assert by_name[name]["connections"] == conns
    # Combined column: exact on four patterns, within 1 on hypercube.
    assert by_name["ring"]["combined"] == 2
    assert by_name["nearest neighbour"]["combined"] == 4
    assert by_name["shuffle-exchange"]["combined"] == 4
    assert by_name["all-to-all"]["combined"] == 64
    assert abs(by_name["hypercube"]["combined"] - 7) <= 1
    # The paper's emphasis: large gains on these specific patterns.
    assert by_name["all-to-all"]["improvement_pct"] > 25
    for r in rows:
        assert r["combined"] <= r["greedy"]


@pytest.mark.parametrize("pattern", ["ring", "nearest neighbour", "hypercube",
                                     "shuffle-exchange"])
def test_classic_scheduling_speed(benchmark, torus8, aapc_warm, pattern):
    """Time the combined scheduler on each sparse classic pattern."""
    from repro.core.combined import combined_schedule
    from repro.core.paths import route_requests
    from repro.patterns.classic import (
        hypercube_pattern,
        nearest_neighbour_2d,
        ring_pattern,
        shuffle_exchange_pattern,
    )

    requests = {
        "ring": ring_pattern(64),
        "nearest neighbour": nearest_neighbour_2d(8, 8),
        "hypercube": hypercube_pattern(64),
        "shuffle-exchange": shuffle_exchange_pattern(64),
    }[pattern]
    connections = route_requests(torus8, requests)
    schedule = benchmark(combined_schedule, connections, torus8)
    schedule.validate(connections)


def test_all_to_all_scheduling_speed(benchmark, torus8, aapc_warm):
    """The densest instance: 4032 connections through the combined
    scheduler (coloring pass plus ordered-AAPC pass)."""
    from repro.core.combined import combined_schedule
    from repro.core.paths import route_requests
    from repro.patterns.classic import all_to_all_pattern

    connections = route_requests(torus8, all_to_all_pattern(64))
    schedule = once(benchmark, combined_schedule, connections, torus8)
    assert schedule.degree == 64
