"""Table 5: compiled vs dynamically controlled communication time.

Runs the cycle-level simulator over every application workload at the
paper's problem sizes: compiled communication (combined scheduler,
pattern-adapted multiplexing degree) against the distributed
reservation protocol at fixed degrees 1, 2, 5 and 10.  Shape checks:

* compiled beats every dynamic configuration on every workload;
* the compiled GS column reproduces the paper *exactly* (35/67/131) --
  it is the calibration anchor -- and TSCF lands on the paper's 19;
* the best dynamic degree differs by pattern (GS wants K=1, dense P3M
  redistributions want K=10), the paper's argument that fixed-degree
  dynamic control cannot win.
"""

from __future__ import annotations

import pytest

from conftest import once

from repro.analysis import experiments as exp
from repro.analysis.tables import format_table
from repro.simulator.params import SimParams


def test_table5(benchmark, torus8, aapc_warm):
    rows = once(benchmark, exp.table5, params=SimParams())

    print()
    print(format_table(
        ["pattern", "problem", "K", "compiled", "dyn1", "dyn2", "dyn5",
         "dyn10", "paper comp/d1/d2/d5/d10"],
        [
            (
                r["pattern"], r["problem"], r["compiled_degree"], r["compiled"],
                r["dynamic_1"], r["dynamic_2"], r["dynamic_5"], r["dynamic_10"],
                "/".join(str(v) for v in exp.PAPER_TABLE5[(r["pattern"], r["problem"])]),
            )
            for r in rows
        ],
        title="Table 5 (communication time in slots)",
    ))

    by_key = {(r["pattern"], r["problem"]): r for r in rows}
    # Calibration anchors: compiled GS and TSCF match the paper exactly.
    assert by_key[("GS", "64 x 64")]["compiled"] == 35
    assert by_key[("GS", "128 x 128")]["compiled"] == 67
    assert by_key[("GS", "256 x 256")]["compiled"] == 131
    assert by_key[("TSCF", "5120")]["compiled"] == 19
    # Compiled always wins, for every pattern and dynamic degree.
    for r in rows:
        for k in exp.DYNAMIC_DEGREES:
            assert r["compiled"] < r[f"dynamic_{k}"]
    # No universal best dynamic degree.
    best = {
        min(exp.DYNAMIC_DEGREES, key=lambda k: r[f"dynamic_{k}"]) for r in rows
    }
    assert len(best) > 1
    # Dynamic GS tracks the paper's column within ~35%.
    for problem, paper in (("64 x 64", (105, 118, 171, 251)),
                           ("256 x 256", (265, 304, 411, 731))):
        r = by_key[("GS", problem)]
        for k, expected in zip(exp.DYNAMIC_DEGREES, paper):
            assert r[f"dynamic_{k}"] == pytest.approx(expected, rel=0.35)


def test_table5_whole_programs(benchmark, torus8, aapc_warm):
    """Program-level extension of Table 5: compile each application's
    full phase sequence (per-phase degrees) against fixed-degree dynamic
    service of the same phases."""
    rows = once(
        benchmark, exp.table5_programs,
        params=SimParams(), gs_grid=256, p3m_grid=32,
    )
    print()
    print(format_table(
        ["program", "phases", "per-phase K", "compiled", "dyn1", "dyn2",
         "dyn5", "dyn10"],
        [
            (
                r["program"], r["phases"],
                "/".join(str(k) for k in r["degrees"]), r["compiled"],
                r["dynamic_1"], r["dynamic_2"], r["dynamic_5"], r["dynamic_10"],
            )
            for r in rows
        ],
        title="Whole-program communication time (slots per iteration)",
    ))
    for r in rows:
        for k in exp.DYNAMIC_DEGREES:
            assert r["compiled"] < r[f"dynamic_{k}"]
    p3m = next(r for r in rows if r["program"] == "P3M")
    assert len(set(p3m["degrees"])) >= 3  # per-phase degree adaptation


def test_compiled_simulation_speed(benchmark, torus8, aapc_warm):
    """Time one compiled run of the heaviest workload (P3M 1 at 64^3)."""
    from repro.patterns.applications import p3m_pattern
    from repro.simulator.compiled import compiled_completion_time

    requests = p3m_pattern(1, 64).requests
    result = benchmark(compiled_completion_time, torus8, requests, SimParams())
    assert result.completion_time > 0


def test_dynamic_simulation_speed(benchmark, torus8):
    """Time one dynamic run (GS 256, degree 2): the event-driven
    reservation protocol end to end."""
    from repro.patterns.applications import gs_pattern
    from repro.simulator.dynamic import simulate_dynamic

    requests = gs_pattern(256).requests
    result = benchmark(simulate_dynamic, torus8, requests, 2, SimParams())
    assert result.completion_time > 0
