"""Extensions beyond the paper: weighted frames, WDM, dynamic traffic,
link failures.

Quantifies the design extensions DESIGN.md lists:

* **weighted TDM frames** -- configuration replication for skewed
  message sizes vs the paper's one-slot-per-connection frames;
* **TDM vs WDM** -- same schedules realised as time slots vs
  wavelengths, under both transmitter models;
* **dynamic-pattern mechanisms** -- standing all-to-all vs multihop
  hypercube emulation vs the run-time reservation protocol, on the same
  online workload (the paper's section-3 discussion / future work);
* **fault tolerance** -- degree inflation and scheduling cost as fibers
  fail.
"""

from __future__ import annotations

import pytest

from conftest import once

from repro.analysis.tables import format_table
from repro.simulator.params import SimParams


def test_weighted_frames_on_skewed_traffic(benchmark, torus8, aapc_warm):
    """Replicated frames beat flat frames when message sizes are skewed."""
    import numpy as np

    from repro.core.combined import combined_schedule
    from repro.core.paths import route_requests
    from repro.core.weighted import WeightedSchedule, simulate_weighted, weighted_schedule
    from repro.patterns.random_patterns import random_pattern
    from repro.core.requests import Request, RequestSet

    rng = np.random.default_rng(7)
    base_pattern = random_pattern(64, 300, seed=rng)
    # Heavy tail: 10% of the messages carry 50x the data.
    sizes = np.where(rng.random(300) < 0.1, 200, 4)
    skewed = RequestSet(
        [Request(r.src, r.dst, size=int(z)) for r, z in zip(base_pattern, sizes)]
    )
    connections = route_requests(torus8, skewed)
    schedule = combined_schedule(connections, torus8)

    def run():
        flat = WeightedSchedule(base=schedule, frame=list(range(schedule.degree)))
        weighted = weighted_schedule(schedule)
        return simulate_weighted(flat), simulate_weighted(weighted), weighted

    t_flat, t_weighted, weighted = once(benchmark, run)
    print(f"\nskewed traffic: flat frame {t_flat} slots vs weighted "
          f"{t_weighted} slots (frame {schedule.degree} -> {weighted.frame_length})")
    assert t_weighted < t_flat
    weighted.validate(connections)


def test_tdm_vs_wdm(benchmark, torus8, aapc_warm):
    """Same compiled schedules, slots vs wavelengths."""
    from repro.simulator.compiled import compiled_completion_time
    from repro.simulator.wdm import wdm_compiled_completion_time
    from repro.patterns.classic import all_to_all_pattern, nearest_neighbour_2d

    params = SimParams()
    workloads = {
        "stencil 64B": nearest_neighbour_2d(8, 8, size=64),
        "all-to-all 16B": all_to_all_pattern(64, size=16),
    }

    def run():
        rows = []
        for name, requests in workloads.items():
            tdm = compiled_completion_time(torus8, requests, params)
            wdm_par = wdm_compiled_completion_time(torus8, requests, params)
            wdm_single = wdm_compiled_completion_time(
                torus8, requests, params, transmitters="single"
            )
            rows.append((name, tdm.degree, tdm.completion_time,
                         wdm_par.completion_time, wdm_single.completion_time))
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(
        ["pattern", "K", "TDM", "WDM (per-wavelength tx)", "WDM (single tx)"],
        rows,
        title="Compiled communication: TDM slots vs WDM wavelengths",
    ))
    for _, degree, tdm, wdm_par, wdm_single in rows:
        assert wdm_par <= tdm          # parallel transmitters always win
        assert wdm_single >= wdm_par   # transmitter serialisation costs


def test_dynamic_pattern_mechanisms(benchmark, torus8, aapc_warm):
    """Standing all-to-all vs multihop emulation vs run-time reservation
    on the same online workload."""
    from repro.core.requests import Request, RequestSet
    from repro.dynamic_patterns import (
        MultihopEmulation,
        StandingAllToAll,
        random_online_workload,
    )
    from repro.simulator.dynamic import simulate_dynamic
    from repro.simulator.metrics import summarize

    params = SimParams()
    workload = random_online_workload(64, 300, mean_gap=3.0, size=4, seed=11)

    def run():
        standing = StandingAllToAll(torus8).simulate(workload, params)
        multihop = MultihopEmulation(torus8).simulate(workload, params)
        requests = RequestSet(
            [Request(r.src, r.dst, size=r.size, tag=i) for i, r in enumerate(workload)],
            allow_duplicates=True,
        )
        reservation = simulate_dynamic(
            torus8, requests, 8, params,
            arrivals=[r.arrival for r in workload],
        )
        return standing, multihop, reservation

    standing, multihop, reservation = once(benchmark, run)
    rows = []
    for label, messages in (
        ("standing all-to-all (frame 64)", standing.messages),
        (f"multihop hypercube (frame {multihop.frame_length})", multihop.messages),
        ("run-time reservation (K=8)", reservation.messages),
    ):
        s = summarize(messages)
        rows.append((label, s["makespan"], s["latency_mean"], s["latency_max"]))
    print()
    print(format_table(
        ["mechanism", "makespan", "mean latency", "max latency"],
        rows,
        title="Dynamic traffic: 300 small messages, mean gap 3 slots",
    ))
    # All three deliver everything; compiled-sequence mechanisms avoid
    # the reservation protocol's retry storms on fine-grained traffic.
    assert all(m.delivered is not None for m in standing.messages)
    assert all(m.delivered is not None for m in multihop.messages)


def test_dynamic_mechanism_load_sweep(benchmark, torus8, aapc_warm):
    """Saturation behaviour: mean latency of the standing-AAPC and
    multihop mechanisms as the offered load rises.  The shorter-frame
    multihop emulation stays ahead until its logical channels congest."""
    from repro.dynamic_patterns import (
        MultihopEmulation,
        StandingAllToAll,
        random_online_workload,
    )
    from repro.simulator.metrics import summarize

    params = SimParams()
    standing = StandingAllToAll(torus8)
    multihop = MultihopEmulation(torus8)

    def run():
        rows = []
        for gap in (8.0, 4.0, 2.0, 1.0):
            wl = random_online_workload(64, 200, mean_gap=gap, size=4, seed=17)
            s = summarize(standing.simulate(wl, params).messages)
            m = summarize(multihop.simulate(wl, params).messages)
            rows.append((gap, s["latency_mean"], m["latency_mean"]))
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(
        ["mean gap (slots)", "standing latency", "multihop latency"],
        rows,
        title="Dynamic mechanisms under rising load (200 messages)",
    ))
    # Latency must grow (weakly) as load rises, for both mechanisms.
    standing_lat = [s for _, s, _ in rows]
    multihop_lat = [m for _, _, m in rows]
    assert standing_lat[-1] >= standing_lat[0] * 0.8
    assert multihop_lat[-1] >= multihop_lat[0] * 0.8
    # At light load the short frame wins clearly.
    assert multihop_lat[0] < standing_lat[0]


def test_dropping_vs_holding_protocol(benchmark, torus8, aapc_warm):
    """Reservation-policy ablation (the refs [15, 17] design space):
    parking blocked reservations at the switch vs failing and retrying."""
    from repro.patterns.applications import p3m_pattern, tscf_pattern
    from repro.simulator.dynamic import simulate_dynamic

    params = SimParams()
    workloads = {
        "TSCF": tscf_pattern().requests,
        "P3M 5 (32^3)": p3m_pattern(5, 32).requests,
    }

    def run():
        rows = []
        for name, requests in workloads.items():
            for k in (1, 5):
                drop = simulate_dynamic(torus8, requests, k, params)
                hold = simulate_dynamic(
                    torus8, requests, k, params, protocol="holding"
                )
                rows.append((
                    name, k, drop.completion_time, drop.total_retries,
                    hold.completion_time, hold.total_retries,
                ))
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(
        ["pattern", "K", "dropping", "retries", "holding", "retries"],
        rows,
        title="Reservation protocol ablation (contended fine-grained traffic)",
    ))
    for _, _, t_drop, r_drop, t_hold, r_hold in rows:
        assert r_hold <= r_drop       # parking replaces failed round trips
        assert t_hold <= t_drop * 1.2  # and is at least competitive


def test_multicast_vs_unicast_collectives(benchmark, torus8, aapc_warm):
    """Optical splitter fanout: collective operations as multicast trees
    vs their unicast emulations."""
    from repro.core.coloring import coloring_schedule
    from repro.core.greedy import greedy_schedule
    from repro.core.paths import route_requests
    from repro.core.requests import RequestSet
    from repro.multicast import (
        all_broadcast_pattern,
        broadcast_pattern,
        route_multicasts,
        row_multicast_pattern,
    )
    from repro.patterns.classic import all_to_all_pattern

    def run():
        rows = []
        # broadcast: 1 tree vs 63 unicasts from one source
        tree = greedy_schedule(route_multicasts(torus8, broadcast_pattern(64))).degree
        uni = greedy_schedule(route_requests(
            torus8, RequestSet.from_pairs([(0, d) for d in range(1, 64)])
        )).degree
        rows.append(("broadcast (1 -> 63)", tree, uni))
        # row multicasts: 8 disjoint trees vs 56 unicasts
        tree = greedy_schedule(
            route_multicasts(torus8, row_multicast_pattern(8, 8))
        ).degree
        uni_pairs = [
            (8 * y, x + 8 * y) for y in range(8) for x in range(1, 8)
        ]
        uni = coloring_schedule(
            route_requests(torus8, RequestSet.from_pairs(uni_pairs))
        ).degree
        rows.append(("row multicast (8 rows)", tree, uni))
        # allgather: 64 spanning trees vs 4032 unicasts
        tree = coloring_schedule(
            route_multicasts(torus8, all_broadcast_pattern(64))
        ).degree
        uni = coloring_schedule(
            route_requests(torus8, all_to_all_pattern(64))
        ).degree
        rows.append(("all-broadcast (allgather)", tree, uni))
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(
        ["collective", "multicast degree", "unicast degree"],
        rows,
        title="Multicast trees vs unicast emulation (slots needed)",
    ))
    for _, tree, uni in rows:
        assert tree <= uni


def test_fault_tolerance_degree_inflation(benchmark, torus8, aapc_warm):
    """Scheduling survives fiber failures; degree grows gracefully."""
    from repro.core.combined import combined_schedule
    from repro.core.paths import route_requests
    from repro.patterns.classic import nearest_neighbour_2d
    from repro.topology.faults import FaultyTopology
    from repro.topology.torus import Torus2D

    requests = nearest_neighbour_2d(8, 8)

    def run():
        rows = []
        faulty = FaultyTopology(Torus2D(8))
        victims = [torus8.transit_link(n, 0, True) for n in (0, 9, 18, 27, 36, 45)]
        for cut in range(0, len(victims) + 1, 2):
            for link in victims[max(cut - 2, 0):cut]:
                faulty.fail_link(link)
            connections = route_requests(faulty, requests)
            schedule = combined_schedule(connections, faulty)
            schedule.validate(connections)
            rows.append((cut, schedule.degree))
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(
        ["failed fibers", "stencil degree"],
        rows,
        title="Fault tolerance: nearest-neighbour degree vs fiber cuts",
    ))
    degrees = [d for _, d in rows]
    assert degrees[0] == 4
    assert all(d <= degrees[0] + 4 for d in degrees)
    assert degrees == sorted(degrees)  # monotone degradation
