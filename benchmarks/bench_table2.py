"""Table 2: multiplexing degree on random 3-D array redistributions.

Draws random block-cyclic source/target distributions of a 64^3 array
over 64 PEs (500 samples under REPRO_FULL=1), bins the resulting
patterns by connection count as the paper does, and checks the shape:
redistribution patterns need *lower* degrees than equally dense random
patterns, improvements are larger than for random patterns in the
mid-density bins, and the dense extreme is exactly the all-to-all
pattern saturating at 64.
"""

from __future__ import annotations

import pytest

from conftest import full_protocol, once

from repro.analysis import experiments as exp
from repro.analysis.tables import format_table


def test_table2_sweep(benchmark, torus8, aapc_warm):
    samples = 500 if full_protocol() else 60
    rows = once(benchmark, exp.table2, samples=samples, seed=0)

    print()
    body = []
    for r in rows:
        label = f"{int(r['bin_low'])}-{int(r['bin_high'])}"
        if r["patterns"] == 0:
            body.append((label, 0, "-", "-", "-", "-", "-"))
        else:
            body.append((
                label, int(r["patterns"]), r["greedy"], r["coloring"],
                r["aapc"], r["combined"], r["improvement_pct"],
            ))
    print(format_table(
        ["conns", "n", "greedy", "coloring", "aapc", "combined", "improv%"],
        body,
        title=f"Table 2 (random redistributions, {samples} samples; paper used 500)",
    ))

    populated = [r for r in rows if r["patterns"] > 0]
    assert len(populated) >= 4, "sampling should hit several density bins"
    for r in populated:
        assert r["combined"] <= r["greedy"] + 1e-9
    # The densest redistribution the generator can produce is all-to-all,
    # where ordered AAPC must hold the 64-phase bound.
    dense = [r for r in populated if r["bin_low"] >= 2401]
    for r in dense:
        assert r["aapc"] <= 64.0


def test_table2_parallel_matches_serial(benchmark, torus8, aapc_warm):
    """Spawned per-sample RNG streams keep the worker-pool sweep
    byte-identical to the serial one (single-core box: equality, not
    speed, is the claim)."""
    kwargs = dict(samples=8, seed=7)
    serial = exp.table2(**kwargs)
    par = once(benchmark, exp.table2, workers=2, **kwargs)
    assert par == serial


def test_redistribution_pattern_generation_speed(benchmark):
    """Time the separable pair/count computation for one redistribution
    (the paper's P3M 1 layout change on a 64^3 array)."""
    from repro.patterns.applications import _p3m_distributions
    from repro.patterns.redistribution import redistribution_requests

    layouts = _p3m_distributions(64)

    def generate():
        return redistribution_requests(layouts["block3"], layouts["zplane"])

    requests = benchmark(generate)
    assert len(requests) > 900


def test_redistribution_degrees_below_random(benchmark, torus8, aapc_warm):
    """Paper: 'the multiplexing degree required to establish connections
    resulting from data redistribution is less than those required for
    random communication patterns.'

    The paper's statement compares Table 2's bin means against Table 1's
    rows at the bin edges (e.g. the 801-1200 redistribution bin's 31.7
    vs 36.3 for 1200 random connections); individual redistributions can
    be *worse* than an equal-count random pattern (a redistribution with
    few source PEs concentrates injection load).  We reproduce the
    bin-edge comparison."""
    import numpy as np

    from repro.core.paths import route_requests
    from repro.core.coloring import coloring_schedule
    from repro.patterns.random_patterns import random_pattern
    from repro.patterns.redistribution import (
        random_distribution,
        redistribution_requests,
    )

    low, high = 801, 1200

    def compare():
        rng = np.random.default_rng(3)
        redist_degrees = []
        while len(redist_degrees) < 6:
            src = random_distribution((64, 64, 64), 64, seed=rng)
            dst = random_distribution((64, 64, 64), 64, seed=rng)
            rs = redistribution_requests(src, dst)
            if low <= len(rs) <= high:
                redist_degrees.append(
                    coloring_schedule(route_requests(torus8, rs)).degree
                )
        random_degrees = [
            coloring_schedule(
                route_requests(torus8, random_pattern(64, high, seed=rng))
            ).degree
            for _ in range(6)
        ]
        return (
            sum(redist_degrees) / len(redist_degrees),
            sum(random_degrees) / len(random_degrees),
        )

    redist_mean, random_mean = once(benchmark, compare)
    print(f"\nbin {low}-{high}: redistribution mean degree {redist_mean:.1f} "
          f"vs random@{high} mean degree {random_mean:.1f}")
    assert redist_mean < random_mean
