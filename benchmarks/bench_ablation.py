"""Ablations beyond the paper's tables.

Design choices DESIGN.md calls out, quantified:

* **scheduler zoo** -- the paper's four algorithms against DSATUR,
  largest-first, random-restart greedy, order heuristics and the
  repack-polished variants;
* **coloring priority rule** -- the paper's literal links/degree ratio
  vs the most-constrained-first default (the documented discrepancy);
* **routing tie-break** -- balanced vs always-positive half-ring
  routing (balanced is what makes the optimal AAPC product possible);
* **embedding** -- identity vs Gray-code placement of the hypercube
  pattern.
"""

from __future__ import annotations

import pytest

from conftest import full_protocol, once

from repro.analysis import experiments as exp
from repro.analysis.tables import format_table
from repro.core.coloring import coloring_schedule
from repro.core.paths import route_requests
from repro.patterns.classic import hypercube_pattern
from repro.patterns.embeddings import gray_embedding
from repro.patterns.random_patterns import random_pattern
from repro.topology.torus import TieBreak, Torus2D


def test_scheduler_zoo(benchmark, torus8, aapc_warm):
    # The networkx colorers and random-restart greedy get expensive on
    # dense instances; the full protocol adds the 2400-connection point.
    patterns = 3 if full_protocol() else 2
    counts = (200, 800, 2400) if full_protocol() else (200, 800)
    rows = once(
        benchmark, exp.ablation_schedulers,
        connection_counts=counts, patterns_per_row=patterns, seed=0,
    )

    print()
    print(format_table(
        ["conns", *exp.ABLATION_SCHEDULERS],
        [(int(r["connections"]), *(r[s] for s in exp.ABLATION_SCHEDULERS)) for r in rows],
        title=f"Scheduler ablation (mean degree over {patterns} patterns)",
    ))

    for r in rows:
        # Polished variants can only help.
        assert r["coloring+repack"] <= r["coloring"]
        assert r["combined+repack"] <= r["combined"]
        # The documented priority-rule finding: the literal paper-ratio
        # rule does not beat the most-constrained default.
        assert r["coloring"] <= r["coloring-ratio"]
        # Nothing beats combined by much (it is the paper's choice).
        best = min(r[s] for s in exp.ABLATION_SCHEDULERS)
        assert r["combined"] <= best + max(3, 0.15 * best)


def test_kernel_speedup_all_to_all(benchmark, aapc_warm):
    """PR acceptance case: the bitmask kernel plus the route cache give
    >=5x end-to-end (route -> conflict structure -> schedule) on the
    densest workload, all-to-all on the 8x8 torus (4032 connections),
    against the seed behaviour (set kernel, no route memoisation) --
    with identical schedules and counters proving the cache is hit.
    """
    from repro.core import perf
    from repro.core.combined import combined_schedule
    from repro.patterns.classic import all_to_all_pattern

    topo = Torus2D(8)
    requests = all_to_all_pattern(64)

    def pipeline(kernel, warm_routes):
        if not warm_routes:
            topo.invalidate_route_cache()  # the seed re-derived every route
        connections = route_requests(topo, requests)
        return coloring_schedule(connections, kernel=kernel)

    def combined_pipeline(kernel, warm_routes):
        if not warm_routes:
            topo.invalidate_route_cache()
        connections = route_requests(topo, requests)
        return combined_schedule(connections, topo, kernel=kernel)

    def timed(fn):
        t0 = perf.perf_timer()
        fn()
        return perf.perf_timer() - t0

    def duel(old_fn, new_fn, rounds=4):
        # Interleave the two sides so a background-noise window on this
        # single-core box degrades both, not just one; best-of filters
        # the rest.
        olds, news = [], []
        for _ in range(rounds):
            olds.append(timed(old_fn))
            news.append(timed(new_fn))
        return min(olds), min(news)

    def measure():
        reference = pipeline("bitmask", True)  # warm caches + allocator
        pipeline("set", False)
        old, new = duel(lambda: pipeline("set", False),
                        lambda: pipeline("bitmask", True))
        perf.reset()
        pipeline("bitmask", True)
        counters = perf.snapshot()
        old_c, new_c = duel(lambda: combined_pipeline("set", False),
                            lambda: combined_pipeline("bitmask", True), rounds=3)
        equal = [
            [c.pair for c in cfg] for cfg in pipeline("set", True)
        ] == [[c.pair for c in cfg] for cfg in reference]
        return old, new, old_c, new_c, counters, equal

    old, new, old_c, new_c, counters, equal = once(benchmark, measure)
    coloring_x = old / new
    combined_x = old_c / new_c
    print()
    print(format_table(
        ["pipeline", "set+no-cache", "bitmask+cache", "speedup"],
        [
            ("route+coloring", f"{old * 1e3:.1f} ms", f"{new * 1e3:.1f} ms",
             f"{coloring_x:.1f}x"),
            ("route+combined", f"{old_c * 1e3:.1f} ms", f"{new_c * 1e3:.1f} ms",
             f"{combined_x:.1f}x"),
        ],
        title="Kernel + route-cache speedup, all-to-all 8x8 (interleaved best-of)",
    ))
    assert equal, "bitmask schedule diverged from the set reference"
    assert counters["route_cache_hits"] > 0, "route cache never hit"
    assert coloring_x >= 5.0
    assert combined_x >= 3.5


def test_coloring_priority_rules(benchmark, torus8):
    """Head-to-head of the two priority readings at three densities."""
    def run():
        out = []
        for n in (400, 1600, 4000):
            conns = route_requests(torus8, random_pattern(64, n, seed=n))
            out.append((
                n,
                coloring_schedule(conns).degree,
                coloring_schedule(conns, priority="paper-ratio").degree,
            ))
        return out

    rows = once(benchmark, run)
    print()
    print(format_table(
        ["conns", "most-constrained", "paper-ratio"],
        rows,
        title="Coloring priority-rule ablation",
    ))
    for _, constrained, ratio in rows:
        assert constrained <= ratio


def test_routing_tie_break(benchmark, aapc_warm):
    """Balanced half-ring routing lowers dense-pattern degrees (and is
    required for the 64-phase AAPC product)."""
    from repro.patterns.classic import all_to_all_pattern

    balanced = Torus2D(8, tie_break=TieBreak.BALANCED)
    positive = Torus2D(8, tie_break=TieBreak.POSITIVE)
    requests = all_to_all_pattern(64)

    def degrees():
        return (
            coloring_schedule(route_requests(balanced, requests)).degree,
            coloring_schedule(route_requests(positive, requests)).degree,
        )

    bal, pos = once(benchmark, degrees)
    print(f"\nall-to-all coloring degree: balanced={bal} positive={pos}")
    assert bal <= pos


def test_torus_vs_omega_substrate(benchmark, torus8):
    """Substrate ablation: the same patterns on the multistage network
    of the paper's ref [13].  A finding worth keeping: the omega's
    uniform stage structure makes its all-to-all conflict graph *easy*
    -- coloring lands on the N-1 = 63 injection bound exactly, while on
    the torus the same heuristic needs 82 against the 64 optimum (which
    only the ordered-AAPC construction reaches).  Per-fiber counts
    differ, of course: the omega offers N wires per stage versus the
    torus's 4N transit fibers."""
    from repro.patterns.classic import (
        all_to_all_pattern,
        hypercube_pattern,
        ring_pattern,
    )
    from repro.topology.omega import OmegaNetwork

    omega = OmegaNetwork(64)

    def run():
        rows = []
        for name, requests in (
            ("ring", ring_pattern(64)),
            ("hypercube", hypercube_pattern(64)),
            ("all-to-all", all_to_all_pattern(64)),
        ):
            torus_deg = coloring_schedule(route_requests(torus8, requests)).degree
            omega_deg = coloring_schedule(route_requests(omega, requests)).degree
            rows.append((name, torus_deg, omega_deg))
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(
        ["pattern", "torus degree", "omega degree"],
        rows,
        title="Substrate ablation: 8x8 torus vs omega-64 MIN",
    ))
    by_name = {name: (t, o) for name, t, o in rows}
    # The ring permutation passes the omega in very few configurations.
    assert by_name["ring"][1] <= 4
    # On the omega, coloring reaches the all-to-all injection bound.
    assert by_name["all-to-all"][1] == 63


def test_embedding_ablation(benchmark, torus8, aapc_warm):
    """Gray-code placement shortens hypercube paths; the schedulers
    should translate that into an equal or lower degree."""
    from repro.core.combined import combined_schedule

    def degrees():
        ident = combined_schedule(
            route_requests(torus8, hypercube_pattern(64)), torus8
        ).degree
        gray = combined_schedule(
            route_requests(torus8, hypercube_pattern(64, embedding=gray_embedding(8, 8))),
            torus8,
        ).degree
        return ident, gray

    ident, gray = once(benchmark, degrees)
    print(f"\nhypercube combined degree: identity={ident} gray={gray}")
    assert gray <= ident
