"""Figures 1 and 3: the paper's worked examples.

Fig. 1 shows the configuration {(4,1), (5,3), (6,10), (8,9), (11,2)} on
a 4x4 torus; the bench re-establishes it through scheduling *and*
through generated switch registers.  Fig. 3 shows greedy needing 3 time
slots on {(0,2), (1,3), (3,4), (2,4)} over 5 linearly connected nodes
while 2 suffice; the bench reproduces both numbers.
"""

from __future__ import annotations

from conftest import once

from repro.analysis import experiments as exp


def test_fig1_configuration(benchmark):
    out = once(benchmark, exp.fig1)
    print(f"\nFig. 1: {out}")
    assert out["conflict_free"] is True
    assert out["connections"] == 5


def test_fig1_through_registers(benchmark):
    """The Fig. 1 configuration realised as actual switch registers and
    traced back out of them."""
    from repro.compiler.codegen import decode_registers, generate_registers
    from repro.core.greedy import greedy_schedule
    from repro.core.paths import route_requests
    from repro.core.requests import RequestSet
    from repro.topology.torus import Torus2D

    topo = Torus2D(4)
    requests = RequestSet.from_pairs(list(exp.FIG1_CONFIGURATION))
    connections = route_requests(topo, requests)

    def build_and_trace():
        schedule = greedy_schedule(connections)
        regs = generate_registers(topo, schedule)
        return schedule, decode_registers(regs)

    schedule, traced = benchmark(build_and_trace)
    assert schedule.degree == 1  # the whole set is one configuration
    assert traced == [set(exp.FIG1_CONFIGURATION)]


def test_fig3_order_sensitivity(benchmark):
    out = once(benchmark, exp.fig3)
    print(f"\nFig. 3: {out}")
    assert out["greedy_natural_order"] == 3
    assert out["greedy_best_order"] == 2
