"""AAPC substrate: phased decomposition construction and optimality.

Not a table of the paper per se, but the paper's ordered-AAPC algorithm
leans on Hinrichs et al.'s optimal N^3/8-phase torus AAPC; this bench
certifies our replacement substrate: the Latin-product construction
reaches exactly 64 phases on the 8x8 torus (== the routed link-load
lower bound == the paper's figure), and reports construction times for
a range of topologies.
"""

from __future__ import annotations

import pytest

from conftest import once

from repro.aapc.bounds import torus_phase_optimum
from repro.aapc.phases import build_aapc_decomposition
from repro.topology.kary_ncube import KAryNCube
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D


def test_torus8_reaches_paper_optimum(benchmark):
    dec = once(benchmark, build_aapc_decomposition, Torus2D(8))
    dec.validate()
    print(f"\n8x8 torus AAPC: {dec.num_phases} phases "
          f"(bound {dec.lower_bound()}, paper N^3/8 = {torus_phase_optimum(8)})")
    assert dec.num_phases == torus_phase_optimum(8) == dec.lower_bound() == 64


@pytest.mark.parametrize("topo_factory,label,slack", [
    (lambda: Ring(8), "ring-8", 0),
    (lambda: Torus2D(4), "torus-4x4", 1),
    (lambda: Torus2D(6), "torus-6x6", 2),
    (lambda: KAryNCube((4, 4, 4)), "torus-4x4x4", 2),
], ids=["ring8", "torus4", "torus6", "cube444"])
def test_decomposition_near_bound(benchmark, topo_factory, label, slack):
    topo = topo_factory()
    dec = once(benchmark, build_aapc_decomposition, topo)
    dec.validate()
    bound = dec.lower_bound()
    print(f"\n{label}: {dec.num_phases} phases (bound {bound})")
    assert dec.num_phases <= bound + slack


def test_latin_solver_speed(benchmark):
    """Time the backtracking search on a fresh (uncached) radix."""
    from repro.aapc.ring_latin import solve_ring_latin, validate_ring_latin

    phi = benchmark(solve_ring_latin, 6, seed=0)
    assert phi is not None
    validate_ring_latin(6, phi)
