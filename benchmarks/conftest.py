"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures (shape-
checked against the paper's reference values from
:mod:`repro.analysis.experiments`) and times the computation that
produces it with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only           # quick settings
    REPRO_FULL=1 pytest benchmarks/ --benchmark-only   # paper's sample counts

The printed paper-vs-measured tables land in the captured output; use
``-s`` to stream them.
"""

from __future__ import annotations

import os

import pytest

from repro.topology.torus import Torus2D


def full_protocol() -> bool:
    """True when REPRO_FULL=1: run the paper's full sample counts."""
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def torus8() -> Torus2D:
    return Torus2D(8)


@pytest.fixture(scope="session")
def aapc_warm(torus8):
    """Pre-build the cached AAPC decomposition so scheduler benches
    measure scheduling, not the one-off substrate construction."""
    from repro.aapc.phases import aapc_decomposition

    return aapc_decomposition(torus8)


def once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round (the experiment drivers are
    deterministic and too heavy for statistical repetition)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
