"""Table 4: the static communication patterns of GS, TSCF and P3M.

The paper's Table 4 is descriptive (pattern type and shape per
application); this bench regenerates the inventory -- including the
connection counts and data volumes our generators derive -- and checks
the structural facts the paper states for each program.
"""

from __future__ import annotations

from conftest import once

from repro.analysis import experiments as exp
from repro.analysis.tables import format_table


def test_table4_inventory(benchmark):
    rows = once(benchmark, exp.table4, p3m_grid=64)

    print()
    print(format_table(
        ["pattern", "type", "conns", "elements", "description"],
        [
            (r["pattern"], r["type"], r["connections"], r["elements"],
             r["description"][:48])
            for r in rows
        ],
        title="Table 4 (application patterns, P3M at 64^3)",
    ))

    by_name = {r["pattern"]: r for r in rows}
    # GS: logical linear array, two adjacent partners per interior PE.
    assert by_name["GS"]["type"] == "shared array ref."
    assert by_name["GS"]["connections"] == 126
    # TSCF: explicit send/receive hypercube.
    assert by_name["TSCF"]["type"] == "explicit send/rec"
    assert by_name["TSCF"]["connections"] == 384
    # P3M 1-4: data redistributions; 2 and 3 are the same layout change.
    for k in (1, 2, 3, 4):
        assert by_name[f"P3M {k}"]["type"] == "data distrib."
    assert by_name["P3M 2"]["connections"] == by_name["P3M 3"]["connections"]
    assert by_name["P3M 2"]["connections"] == 4032  # dense all-to-all
    # P3M 5: 26-neighbour ghost exchange on the logical 4x4x4 grid.
    assert by_name["P3M 5"]["connections"] == 64 * 26


def test_pattern_generation_speed(benchmark):
    """Time regenerating the full application-pattern inventory."""
    from repro.patterns.applications import application_patterns

    pats = benchmark(application_patterns, p3m_grid=64)
    assert len(pats) == 7
