"""Table 1: multiplexing degree on random patterns (paper sec. 3.4).

Regenerates the full sweep (100..4000 connections on the 8x8 torus) and
checks the paper's shape claims: coloring <= greedy, ordered AAPC wins
when dense (saturating at 64), and the combined algorithm's improvement
over greedy grows from a few percent (sparse) to >25% (dense; paper:
43.1%).  Also times each individual scheduler on a mid-density pattern.
"""

from __future__ import annotations

import pytest

from conftest import full_protocol, once

from repro.analysis import experiments as exp
from repro.analysis.tables import format_table
from repro.core.paths import route_requests
from repro.core.registry import get_scheduler
from repro.patterns.random_patterns import random_pattern


def test_table1_sweep(benchmark, torus8, aapc_warm):
    patterns = 100 if full_protocol() else 5
    rows = once(benchmark, exp.table1, patterns_per_row=patterns, seed=0)

    print()
    print(format_table(
        ["conns", "greedy", "coloring", "aapc", "combined", "improv%",
         "paper g/c/a/comb"],
        [
            (
                int(r["connections"]), r["greedy"], r["coloring"], r["aapc"],
                r["combined"], r["improvement_pct"],
                "/".join(str(v) for v in exp.PAPER_TABLE1[int(r["connections"])]),
            )
            for r in rows
        ],
        title=f"Table 1 (random patterns, {patterns}/row; paper used 100)",
    ))

    for r in rows:
        n = int(r["connections"])
        assert r["coloring"] <= r["greedy"]
        assert r["combined"] <= min(r["coloring"], r["aapc"])
        paper = exp.PAPER_TABLE1[n]
        assert r["greedy"] == pytest.approx(paper[0], rel=0.15)
        assert r["combined"] == pytest.approx(paper[3], rel=0.15)
    dense = rows[-1]
    assert dense["aapc"] == 64.0
    assert dense["improvement_pct"] > 25.0


def test_table1_parallel_matches_serial(benchmark, torus8, aapc_warm):
    """The seed-sweep driver is deterministic: per-task spawned RNG
    streams make the worker-pool result byte-identical to the serial
    one (this box is single-core, so we assert equality, not speed)."""
    kwargs = dict(connection_counts=(400, 1200), patterns_per_row=3, seed=7)
    serial = exp.table1(**kwargs)
    par = once(benchmark, exp.table1, workers=2, **kwargs)
    assert par == serial


@pytest.mark.parametrize("scheduler", ["greedy", "coloring", "aapc", "combined"])
def test_scheduler_speed_1600_connections(benchmark, torus8, aapc_warm, scheduler):
    """Time one scheduler run at the sweep's mid density."""
    connections = route_requests(torus8, random_pattern(64, 1600, seed=42))
    fn = get_scheduler(scheduler)
    result = benchmark(fn, connections, torus8)
    result.validate(connections)
